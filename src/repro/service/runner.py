"""The open-loop service runner: one installation, a day of traffic.

Everything before this module ran the installation *per experiment* —
build a cluster, submit N workflows, tear it down. ``ServiceRunner``
holds one RM, one HDFS and one admission controller alive for the whole
run and feeds it submissions as an arrival process fires on the
simulated clock, the way the paper's Sec. 3.1 "many independent AMs on
one installation" deployment would actually be operated.

Per submission it records:

* **queue wait** — arrival (``WorkflowSubmitted``) to AM start
  (``WorkflowStarted``), i.e. the time spent in the admission queue;
* **makespan** — AM start to final state;
* **end-to-end latency** — arrival to final state (what a user feels).

A sampler process additionally records backlog depth, admission queue
depth, running applications and pending container requests every
``sample_period_s`` into :class:`~repro.obs.registry.Series` metrics,
so the time series ride the same registry export (JSON / Prometheus
text) as every other metric.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.cluster import Cluster, ClusterSpec, XEON_E5_2620
from repro.core import HiWay, HiWayConfig
from repro.hdfs import HdfsClient
from repro.langs import CuneiformSource, DaxSource, GalaxySource
from repro.obs import events as ev
from repro.obs.registry import SERVICE_SERIES
from repro.service.arrivals import ArrivalProcess
from repro.service.slo import ServiceReport, SloTargets, SubmissionRecord
from repro.service.traffic import (
    DEFAULT_TENANTS,
    SubmissionSpec,
    TenantProfile,
    build_schedule,
)
from repro.sim import DEFAULT_SOLVER, Environment
from repro.workflow.model import TaskSource
from repro.workloads import (
    KMEANS_TOOLS,
    MONTAGE_TOOLS,
    RNASEQ_TOOLS,
    SNV_TOOLS,
    kmeans_cuneiform,
    kmeans_inputs,
    montage_dax,
    montage_inputs,
    sample_read_files,
    snv_cuneiform,
    trapline_galaxy_json,
    trapline_input_bindings,
    trapline_inputs,
)

__all__ = ["ServiceConfig", "ServiceRunner"]

#: Diagnostics prefix the AM reports when admission refused it.
_REJECTED_PREFIX = "admission rejected"


@dataclass(frozen=True)
class ServiceConfig:
    """One service deployment: cluster size, policies, workload widths."""

    #: Cluster shape.
    workers: int = 8
    containers_per_node: int = 3
    backbone_mb_s: float = 100.0
    #: RM cross-application allocation policy ("fifo", "fair", "drf").
    rm_policy: str = "fair"
    #: Admission control (None = no cap).
    max_concurrent_apps: Optional[int] = 8
    admission_overflow: str = "queue"
    admission_drain: str = "fifo"
    #: Workflow scheduler every AM runs.
    scheduler: str = "data-aware"
    #: Size each container to its task's tool profile instead of one
    #: fixed installation-wide capability. On by default here: a mixed
    #: service runs everything from 200 MB k-means checks to 8 GB
    #: TopHat2 mappings, which no single fixed size serves well.
    adaptive_container_sizing: bool = True
    #: Seconds between backlog/queue-depth samples.
    sample_period_s: float = 60.0
    #: Bound on retained samples per service time series (None = keep
    #: all). Long runs decimate deterministically; see
    #: :class:`~repro.obs.registry.Series`.
    max_series_points: Optional[int] = None
    #: Whether the run drains every admitted workflow after the last
    #: arrival (True) or cuts off at the horizon leaving in-flight
    #: submissions unfinished (False).
    drain: bool = True
    #: Workload widths (service-sized, far below the paper's scale).
    snv_samples: int = 2
    snv_files_per_sample: int = 2
    snv_mb_per_file: float = 64.0
    montage_degree: float = 0.25
    kmeans_partitions: int = 4
    kmeans_mb_per_partition: float = 32.0
    kmeans_iterations: int = 3
    rnaseq_mb_per_replicate: float = 64.0
    #: Seed for HDFS placement and input staging.
    seed: int = 0
    #: Rate-solver version of the installation's flow network (the
    #: ``solver_version`` stamp on every report this deployment emits).
    flow_solver: str = DEFAULT_SOLVER

    def setup_line(self) -> str:
        """One deterministic line describing the deployment."""
        cap = (
            "uncapped" if self.max_concurrent_apps is None
            else (
                f"cap {self.max_concurrent_apps} "
                f"({self.admission_overflow}, {self.admission_drain} drain)"
            )
        )
        return (
            f"{self.workers} workers x {self.containers_per_node} containers, "
            f"{self.rm_policy} rm, {cap}, {self.scheduler} scheduler, "
            f"solver {self.flow_solver}"
        )


class ServiceRunner:
    """Drives one long-lived installation through an arrival schedule."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.env = Environment()
        self.cluster = Cluster(
            self.env,
            ClusterSpec(
                worker_spec=XEON_E5_2620,
                worker_count=cfg.workers,
                master_count=1,
                backbone_mb_s=cfg.backbone_mb_s,
            ),
            flow_solver=cfg.flow_solver,
        )
        self.hiway = HiWay(
            self.cluster,
            hdfs=HdfsClient(self.cluster, seed=cfg.seed),
            config=HiWayConfig(
                container_vcores=1,
                container_memory_mb=1024.0,
                adaptive_container_sizing=cfg.adaptive_container_sizing,
                scheduler=cfg.scheduler,
                rm_policy=cfg.rm_policy,
                max_concurrent_apps=cfg.max_concurrent_apps,
                admission_overflow=cfg.admission_overflow,
                admission_drain=cfg.admission_drain,
                flow_solver=cfg.flow_solver,
            ),
            max_containers_per_node=cfg.containers_per_node,
        )
        self.bus = self.hiway.bus
        self.registry = self.hiway.registry
        # Per-run measurement state, keyed by (unique) submission name.
        self._submitted_at: dict[str, float] = {}
        self._admitted_at: dict[str, float] = {}
        self._finished: dict[str, tuple[float, bool, bool]] = {}
        self._t0 = 0.0
        self._staged = False
        self.bus.subscribe(ev.WorkflowStarted, self._on_started)

    def _on_started(self, event: ev.WorkflowStarted) -> None:
        # WorkflowStarted fires once per AM, post-admission; the gap to
        # the submission time is the admission queue wait.
        if event.name in self._submitted_at:
            self._admitted_at.setdefault(event.name, event.t)

    # -- workload materialisation -----------------------------------------------

    def _shared_inputs(self, kinds: set[str]) -> dict[str, float]:
        """Input manifest shared (read-only) by every submission."""
        cfg = self.config
        inputs: dict[str, float] = {}
        if "snv" in kinds:
            inputs.update(sample_read_files(
                cfg.snv_samples,
                files_per_sample=cfg.snv_files_per_sample,
                mb_per_file=cfg.snv_mb_per_file,
            ))
        if "montage" in kinds:
            inputs.update(montage_inputs(cfg.montage_degree))
        if "kmeans" in kinds:
            inputs.update(kmeans_inputs(
                cfg.kmeans_partitions, cfg.kmeans_mb_per_partition
            ))
        if "rnaseq" in kinds:
            inputs.update(trapline_inputs(cfg.rnaseq_mb_per_replicate))
        return inputs

    def _source_for(self, spec: SubmissionSpec) -> TaskSource:
        """Build the task source for one submission.

        Output paths must not collide across concurrent submissions:
        Cuneiform scopes outputs by source name and Galaxy by workflow
        name (the unique ``spec.name`` suffices), while the Montage DAX
        carries absolute ``/work``/``/out`` paths and gets a unique
        ``work_prefix``. Inputs stay shared — they are read-only.
        """
        cfg = self.config
        if spec.kind == "snv":
            inputs = sample_read_files(
                cfg.snv_samples,
                files_per_sample=cfg.snv_files_per_sample,
                mb_per_file=cfg.snv_mb_per_file,
            )
            return CuneiformSource(snv_cuneiform(inputs), name=spec.name)
        if spec.kind == "montage":
            return DaxSource(
                montage_dax(cfg.montage_degree, work_prefix=f"/svc/{spec.name}"),
                name=spec.name,
            )
        if spec.kind == "kmeans":
            return CuneiformSource(
                kmeans_cuneiform(
                    cfg.kmeans_partitions,
                    iterations_until_convergence=cfg.kmeans_iterations,
                ),
                name=spec.name,
            )
        if spec.kind == "rnaseq":
            return GalaxySource(
                trapline_galaxy_json(),
                input_bindings=trapline_input_bindings(),
                name=spec.name,
            )
        raise ValueError(f"unknown workload kind {spec.kind!r}")

    def _stage(self, kinds: set[str]) -> None:
        """Install tools and stage shared inputs (runs the sim clock)."""
        if self._staged:
            return
        tools: tuple[str, ...] = ()
        if "snv" in kinds:
            tools += SNV_TOOLS
        if "montage" in kinds:
            tools += MONTAGE_TOOLS
        if "kmeans" in kinds:
            tools += KMEANS_TOOLS
        if "rnaseq" in kinds:
            tools += RNASEQ_TOOLS
        self.hiway.install_everywhere(*tools)
        self.hiway.stage_inputs(self._shared_inputs(kinds), seed=self.config.seed)
        self._staged = True

    # -- simulation processes ---------------------------------------------------

    def _drive(self, spec: SubmissionSpec):
        """One submission's life: wait for its arrival time, submit, wait."""
        delay = self._t0 + spec.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self._submitted_at[spec.name] = self.env.now
        if self.bus.wants(ev.WorkflowSubmitted):
            self.bus.emit(ev.WorkflowSubmitted(
                name=spec.name, tenant=spec.tenant, workload=spec.kind
            ))
        result = yield self.hiway.submit(
            self._source_for(spec),
            scheduler=self.config.scheduler,
            name=spec.name,
            tenant=spec.tenant,
        )
        rejected = not result.success and any(
            diagnostic.startswith(_REJECTED_PREFIX)
            for diagnostic in result.diagnostics
        )
        self._finished[spec.name] = (self.env.now, result.success, rejected)
        if self.bus.wants(ev.SubmissionFinished):
            self.bus.emit(ev.SubmissionFinished(
                name=spec.name, tenant=spec.tenant, workload=spec.kind,
                success=result.success, rejected=rejected,
            ))

    def _sampler(self):
        while True:
            self._sample()
            yield self.env.timeout(self.config.sample_period_s)

    def _sample(self) -> None:
        # Published as an event (not recorded directly): the attached
        # registry folds it into the hiway_service_* series, and the
        # same handler reproduces them from a journal replay.
        self.bus.emit(ev.ServiceSample(
            rel_t=self.env.now - self._t0,
            backlog=float(len(self._submitted_at) - len(self._finished)),
            queue_depth=float(self.hiway.rm.admission_queue_depth()),
            running_apps=float(self.hiway.rm.active_application_count()),
            pending_containers=float(self.hiway.rm.pending_request_count()),
        ))

    def _snapshot_loop(self, monitor, every_s: float, sink):
        while True:
            yield self.env.timeout(every_s)
            sink(monitor.snapshot(self.env.now - self._t0))

    # -- entry point ------------------------------------------------------------

    def run(
        self,
        arrivals: ArrivalProcess,
        tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
        horizon_s: float = 3600.0,
        targets: Optional[SloTargets] = None,
        max_submissions: Optional[int] = None,
        journal=None,
        monitor=None,
        snapshot_every_s: Optional[float] = None,
        on_snapshot=None,
    ) -> ServiceReport:
        """Play ``arrivals`` against the installation; return the report.

        The schedule is materialised up front (deterministic in the
        arrival seed), shared inputs are staged once, then one process
        per submission waits for its arrival time and submits. With
        ``config.drain`` the run continues past the horizon until every
        admitted workflow finished; otherwise it cuts off at the horizon
        and in-flight submissions stay unfinished in the report.

        ``journal`` (an :class:`~repro.obs.journal.EventJournal`) gets
        the run's header metadata written and is attached to the bus
        for the duration of the run — the caller closes it.
        ``monitor`` (a :class:`~repro.obs.live.LiveMonitor`) is
        attached likewise with its epoch set to the run start; with
        ``snapshot_every_s`` and ``on_snapshot``, a sampler process
        hands the callback a rendered snapshot each period.
        """
        schedule = build_schedule(
            arrivals, tenants, horizon_s, max_submissions=max_submissions
        )
        if journal is not None:
            # Attached before staging so the journal carries the whole
            # event stream the live registry saw. The run's epoch (t0)
            # is not in the header — staging runs the sim clock, so it
            # is not known yet; readers derive it from the first
            # ServiceSample (emitted exactly at t0 with rel_t == 0).
            journal.write_header({"service": {
                "traffic": arrivals.describe(),
                "setup": self.config.setup_line(),
                "horizon_s": horizon_s,
                "targets": asdict(targets) if targets is not None else None,
                "max_series_points": self.config.max_series_points,
                "schedule": [
                    {"index": spec.index, "name": spec.name,
                     "tenant": spec.tenant, "kind": spec.kind, "at": spec.at}
                    for spec in schedule
                ],
            }})
            journal.attach(self.bus)
        self._stage({spec.kind for spec in schedule})
        self._t0 = self.env.now
        if monitor is not None:
            monitor.epoch = self._t0
            if monitor.targets is None:
                monitor.targets = targets
            monitor.attach(self.bus)
            if snapshot_every_s is not None and on_snapshot is not None:
                self.env.process(
                    self._snapshot_loop(monitor, snapshot_every_s, on_snapshot)
                )
        max_points = self.config.max_series_points
        series = {
            attr: self.registry.series(name, help_text, max_points=max_points)
            for name, help_text, attr in SERVICE_SERIES
        }
        backlog, queue_depth, running = (
            series["backlog"], series["queue_depth"], series["running_apps"]
        )
        processes = [self.env.process(self._drive(spec)) for spec in schedule]
        self.env.process(self._sampler())
        if processes:
            if self.config.drain:
                self.env.run(until=self.env.all_of(processes))
            else:
                # A time stop, not `until=self.env.timeout(...)`: Timeouts
                # are born triggered, which would stop the run at the
                # first processed event instead of the horizon.
                self.env.run(until=self._t0 + horizon_s)
        self._sample()
        if monitor is not None:
            monitor.close()
        if journal is not None:
            journal.detach()

        records = []
        for spec in schedule:
            final = self._finished.get(spec.name)
            records.append(SubmissionRecord(
                index=spec.index,
                name=spec.name,
                tenant=spec.tenant,
                kind=spec.kind,
                submitted_at=self._submitted_at.get(spec.name, self._t0 + spec.at),
                admitted_at=self._admitted_at.get(spec.name),
                finished_at=final[0] if final else None,
                success=final[1] if final else False,
                rejected=final[2] if final else False,
            ))
        duration = max(self.env.now - self._t0, horizon_s)
        return ServiceReport(
            traffic=arrivals.describe(),
            setup=self.config.setup_line(),
            horizon_s=duration,
            records=records,
            backlog=list(backlog.samples),
            queue_depth=list(queue_depth.samples),
            running_apps=list(running.samples),
            targets=targets,
        )
