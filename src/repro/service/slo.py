"""SLO evaluation: percentiles, throughput, backlog, verdicts.

A batch harness reports a makespan; a service reports a latency
*distribution* against declared targets. :class:`ServiceReport` turns
one open-loop run's submission records and time series into p50/p95/p99
end-to-end latency, admission queue wait, throughput, backlog depth and
rejection rate, and grades them against :class:`SloTargets`.

Rendering is strictly a function of simulated quantities — no wall
clock, no ordering dependent on dict iteration of unsorted inputs — so
a seeded run's report is byte-identical across invocations (the
``serve-sim`` determinism contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.stats import mean, percentile

__all__ = ["SloTargets", "SubmissionRecord", "ServiceReport"]


@dataclass(frozen=True)
class SloTargets:
    """Declared service-level objectives for one run.

    ``None`` fields are not graded. ``max_rejection_rate`` is a
    fraction in [0, 1].
    """

    p50_s: Optional[float] = None
    p95_s: Optional[float] = None
    p99_s: Optional[float] = None
    max_rejection_rate: Optional[float] = None

    def is_empty(self) -> bool:
        return all(
            target is None
            for target in (
                self.p50_s, self.p95_s, self.p99_s, self.max_rejection_rate
            )
        )


@dataclass(frozen=True)
class SubmissionRecord:
    """What became of one submission.

    Exactly one of the three outcomes holds: ``rejected`` (admission
    refused it), ``completed`` (a result came back, ``success`` telling
    whether the workflow itself succeeded), or neither (still in flight
    when the run was cut off at the horizon).
    """

    index: int
    name: str
    tenant: str
    kind: str
    submitted_at: float
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    success: bool = False
    rejected: bool = False

    @property
    def completed(self) -> bool:
        return self.finished_at is not None and not self.rejected

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end latency: submission to final state."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Admission queue wait: submission to AM start."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def makespan_s(self) -> Optional[float]:
        """Execution time after admission."""
        if self.admitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.admitted_at


def _series_stats(samples: Sequence[tuple[float, float]]) -> tuple[float, float, float]:
    """(max, mean, final) of a time series' values."""
    values = [value for _, value in samples]
    if not values:
        return 0.0, 0.0, 0.0
    return max(values), mean(values), values[-1]


def _dist_line(label: str, values: Sequence[float]) -> str:
    return (
        f"{label:<26}  p50 {percentile(values, 50):9.1f}   "
        f"p95 {percentile(values, 95):9.1f}   "
        f"p99 {percentile(values, 99):9.1f}   "
        f"max {max(values, default=0.0):9.1f}"
    )


@dataclass
class ServiceReport:
    """Everything one open-loop run produced, with an SLO verdict."""

    traffic: str
    setup: str
    horizon_s: float
    records: list[SubmissionRecord]
    #: (sim time, value) samples recorded every ``sample_period_s``.
    backlog: list[tuple[float, float]] = field(default_factory=list)
    queue_depth: list[tuple[float, float]] = field(default_factory=list)
    running_apps: list[tuple[float, float]] = field(default_factory=list)
    targets: Optional[SloTargets] = None

    # -- scalar aggregates ------------------------------------------------------

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> list[SubmissionRecord]:
        return [r for r in self.records if r.completed]

    @property
    def rejected(self) -> list[SubmissionRecord]:
        return [r for r in self.records if r.rejected]

    @property
    def unfinished(self) -> list[SubmissionRecord]:
        return [
            r for r in self.records
            if not r.rejected and r.finished_at is None
        ]

    @property
    def failed(self) -> list[SubmissionRecord]:
        return [r for r in self.completed if not r.success]

    @property
    def latencies_s(self) -> list[float]:
        return [r.latency_s for r in self.completed]

    @property
    def queue_waits_s(self) -> list[float]:
        return [
            r.queue_wait_s for r in self.records
            if r.queue_wait_s is not None
        ]

    @property
    def makespans_s(self) -> list[float]:
        return [
            r.makespan_s for r in self.completed
            if r.makespan_s is not None
        ]

    @property
    def rejection_rate(self) -> float:
        return len(self.rejected) / self.submitted if self.submitted else 0.0

    @property
    def throughput_per_h(self) -> float:
        """Completed workflows per simulated hour."""
        if self.horizon_s <= 0:
            return 0.0
        return len(self.completed) * 3600.0 / self.horizon_s

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    # -- verdict ----------------------------------------------------------------

    def verdicts(self) -> list[tuple[str, bool, float, float]]:
        """(criterion, passed, observed, target) per graded objective."""
        if self.targets is None or self.targets.is_empty():
            return []
        out: list[tuple[str, bool, float, float]] = []
        for q, target in (
            (50, self.targets.p50_s),
            (95, self.targets.p95_s),
            (99, self.targets.p99_s),
        ):
            if target is None:
                continue
            observed = self.latency_percentile(q)
            out.append((f"p{q} latency <= {target:.0f} s",
                        observed <= target, observed, target))
        if self.targets.max_rejection_rate is not None:
            observed = self.rejection_rate
            target = self.targets.max_rejection_rate
            out.append((f"rejection rate <= {target * 100:.1f}%",
                        observed <= target, observed * 100, target * 100))
        return out

    def passed(self) -> bool:
        """True when every graded objective holds (vacuously true)."""
        return all(ok for _, ok, _, _ in self.verdicts())

    # -- rendering --------------------------------------------------------------

    def per_tenant_rows(self) -> list[tuple[str, int, int, int, float, float]]:
        """(tenant, submitted, completed, rejected, p50, p99), sorted."""
        tenants = sorted({r.tenant for r in self.records})
        rows = []
        for tenant in tenants:
            mine = [r for r in self.records if r.tenant == tenant]
            done = [r.latency_s for r in mine if r.completed]
            rows.append((
                tenant,
                len(mine),
                sum(1 for r in mine if r.completed),
                sum(1 for r in mine if r.rejected),
                percentile(done, 50),
                percentile(done, 99),
            ))
        return rows

    def render(self) -> str:
        """The full fixed-width report (deterministic under a seed)."""
        lines = [
            "open-loop service report",
            "========================",
            f"traffic   : {self.traffic}",
            f"setup     : {self.setup}",
            f"horizon   : {self.horizon_s:.0f} s",
            (
                f"submitted : {self.submitted}   "
                f"completed: {len(self.completed)}   "
                f"rejected: {len(self.rejected)}   "
                f"failed: {len(self.failed)}   "
                f"in flight at horizon: {len(self.unfinished)}"
            ),
            "",
            _dist_line("end-to-end latency (s)", self.latencies_s),
            _dist_line("admission wait (s)", self.queue_waits_s),
            _dist_line("makespan (s)", self.makespans_s),
            "",
            f"throughput     : {self.throughput_per_h:.2f} workflows/hour",
            f"rejection rate : {self.rejection_rate * 100:.1f}% "
            f"({len(self.rejected)}/{self.submitted})",
        ]
        for label, samples in (
            ("backlog depth", self.backlog),
            ("admission queue", self.queue_depth),
            ("running apps", self.running_apps),
        ):
            peak, average, final = _series_stats(samples)
            lines.append(
                f"{label:<15}: max {peak:.0f}   mean {average:.2f}   "
                f"final {final:.0f}   ({len(samples)} samples)"
            )
        lines.append("")
        lines.append("per-tenant:")
        lines.append(
            f"  {'tenant':<12} {'sub':>5} {'done':>5} {'rej':>5} "
            f"{'p50(s)':>9} {'p99(s)':>9}"
        )
        for tenant, sub, done, rej, p50, p99 in self.per_tenant_rows():
            lines.append(
                f"  {tenant:<12} {sub:>5} {done:>5} {rej:>5} "
                f"{p50:>9.1f} {p99:>9.1f}"
            )
        verdicts = self.verdicts()
        if verdicts:
            lines.append("")
            lines.append("SLO verdict:")
            for criterion, ok, observed, _ in verdicts:
                status = "PASS" if ok else "FAIL"
                lines.append(
                    f"  {status}  {criterion}  (observed {observed:.1f})"
                )
            lines.append(
                f"  overall: {'PASS' if self.passed() else 'FAIL'}"
            )
        return "\n".join(lines) + "\n"
