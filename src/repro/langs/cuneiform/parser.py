"""Recursive-descent parser for the Cuneiform subset.

Grammar (simplified Cuneiform 1.0):

.. code-block:: text

    script     := statement*
    statement  := taskdef | fundef | assignment | target
    taskdef    := 'deftask' NAME '(' ports ':' ports ')' ['in' NAME] BODY
    ports      := ( NAME | '<' NAME '>' )*
    fundef     := 'defun' NAME '(' NAME* ')' '=' expr ';'
    assignment := NAME '=' expr ';'
    target     := expr ';'
    expr       := 'if' expr 'then' expr 'else' expr 'end'
                | 'let' NAME '=' expr ';' expr
                | concat
    concat     := primary ('+' primary)*
    primary    := STRING | 'nil' | NAME [application] | '[' expr* ']'
    application:= '(' [NAME ':' expr (',' NAME ':' expr)*] ')'
"""

from __future__ import annotations

from repro.errors import CuneiformError
from repro.langs.cuneiform.ast import (
    Apply,
    Assign,
    Concat,
    Expr,
    FunDef,
    If,
    Let,
    ListExpr,
    Port,
    Script,
    Str,
    Target,
    TaskDef,
    Var,
)
from repro.langs.cuneiform.lexer import Token, tokenize

__all__ = ["parse"]


def _parse_annotations(body: str) -> dict[str, str]:
    """Extract ``key: value`` annotation lines from a script body."""
    annotations: dict[str, str] = {}
    for line in body.splitlines():
        line = line.strip().lstrip("#").strip()
        if ":" in line:
            key, _, value = line.partition(":")
            key = key.strip()
            if key and " " not in key:
                annotations[key] = value.strip()
    return annotations


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise CuneiformError(
                f"line {token.line}: expected {kind}, found {token.kind} "
                f"({token.value!r})"
            )
        return self._next()

    def _accept(self, kind: str) -> bool:
        if self._peek().kind == kind:
            self._next()
            return True
        return False

    # -- top level -------------------------------------------------------------

    def parse_script(self) -> Script:
        script = Script()
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "deftask":
                task = self._parse_taskdef()
                if task.name in script.tasks:
                    raise CuneiformError(f"task {task.name!r} defined twice")
                script.tasks[task.name] = task
            elif token.kind == "defun":
                fun = self._parse_fundef()
                if fun.name in script.functions:
                    raise CuneiformError(f"function {fun.name!r} defined twice")
                script.functions[fun.name] = fun
            elif (
                token.kind == "NAME"
                and self._tokens[self._pos + 1].kind == "EQUALS"
            ):
                self._next()
                self._expect("EQUALS")
                expr = self._parse_expr()
                self._expect("SEMI")
                if token.value in script.assignments:
                    raise CuneiformError(f"variable {token.value!r} assigned twice")
                script.assignments[token.value] = expr
            else:
                expr = self._parse_expr()
                self._expect("SEMI")
                script.targets.append(Target(expr).expr)
        return script

    def _parse_ports(self, terminators: tuple[str, ...]) -> tuple[Port, ...]:
        ports: list[Port] = []
        while self._peek().kind not in terminators:
            if self._accept("LANGLE"):
                name = self._expect("NAME").value
                self._expect("RANGLE")
                ports.append(Port(name, aggregate=True))
            else:
                ports.append(Port(self._expect("NAME").value))
        return tuple(ports)

    def _parse_taskdef(self) -> TaskDef:
        self._expect("deftask")
        name = self._expect("NAME").value
        self._expect("LPAREN")
        outports = self._parse_ports(("COLON",))
        self._expect("COLON")
        inports = self._parse_ports(("RPAREN",))
        self._expect("RPAREN")
        language = "bash"
        if self._accept("in"):
            language = self._expect("NAME").value
        body = self._expect("BODY").value
        if not outports:
            raise CuneiformError(f"task {name!r} declares no output ports")
        return TaskDef(
            name=name,
            outports=outports,
            inports=inports,
            language=language,
            body=body,
            annotations=_parse_annotations(body),
        )

    def _parse_fundef(self) -> FunDef:
        self._expect("defun")
        name = self._expect("NAME").value
        self._expect("LPAREN")
        params: list[str] = []
        while self._peek().kind == "NAME":
            params.append(self._next().value)
        self._expect("RPAREN")
        self._expect("EQUALS")
        body = self._parse_expr()
        self._expect("SEMI")
        return FunDef(name=name, params=tuple(params), body=body)

    # -- expressions -------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        token = self._peek()
        if token.kind == "if":
            self._next()
            condition = self._parse_expr()
            self._expect("then")
            then_branch = self._parse_expr()
            self._expect("else")
            else_branch = self._parse_expr()
            self._expect("end")
            return If(condition, then_branch, else_branch)
        if token.kind == "let":
            self._next()
            name = self._expect("NAME").value
            self._expect("EQUALS")
            value = self._parse_expr()
            self._expect("SEMI")
            body = self._parse_expr()
            return Let(name, value, body)
        return self._parse_concat()

    def _parse_concat(self) -> Expr:
        left = self._parse_primary()
        while self._accept("PLUS"):
            right = self._parse_primary()
            left = Concat(left, right)
        return left

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "STRING":
            self._next()
            return Str(token.value)
        if token.kind == "nil":
            self._next()
            return ListExpr(())
        if token.kind == "LBRACKET":
            self._next()
            items: list[Expr] = []
            while not self._accept("RBRACKET"):
                items.append(self._parse_expr())
            return ListExpr(tuple(items))
        if token.kind == "NAME":
            self._next()
            if self._peek().kind != "LPAREN":
                return Var(token.value)
            self._next()  # LPAREN
            args: list[tuple[str, Expr]] = []
            if not self._accept("RPAREN"):
                while True:
                    arg_name = self._expect("NAME").value
                    self._expect("COLON")
                    args.append((arg_name, self._parse_expr()))
                    if self._accept("RPAREN"):
                        break
                    self._expect("COMMA")
            return Apply(token.value, tuple(args))
        raise CuneiformError(
            f"line {token.line}: unexpected {token.kind} ({token.value!r})"
        )


def parse(text: str) -> Script:
    """Parse Cuneiform source text into a :class:`Script`."""
    return _Parser(tokenize(text)).parse_script()
