"""Tokeniser for the Cuneiform-style workflow language.

The language implemented here is a faithful subset of Cuneiform [8] as
described in the paper: a minimal functional language with black-box
tasks, list-valued expressions, conditionals, and recursion — enough to
express the iterative k-means workflow of Sec. 3.3. Syntax follows
Cuneiform 1.0 conventions (``deftask``, ``*{ ... }*`` script bodies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CuneiformError

__all__ = ["Token", "tokenize"]

KEYWORDS = {
    "deftask",
    "defun",
    "in",
    "if",
    "then",
    "else",
    "end",
    "let",
    "nil",
}

SYMBOLS = {
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ":": "COLON",
    ";": "SEMI",
    ",": "COMMA",
    "=": "EQUALS",
    "<": "LANGLE",
    ">": "RANGLE",
    "+": "PLUS",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`CuneiformError` on junk."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> CuneiformError:
        return CuneiformError(f"line {line}, column {column}: {message}")

    while index < length:
        char = text[index]
        # -- whitespace -----------------------------------------------------
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        # -- comments ---------------------------------------------------------
        if char == "%" or (char == "/" and text[index : index + 2] == "//"):
            while index < length and text[index] != "\n":
                index += 1
            continue
        # -- script bodies *{ ... }* -------------------------------------------
        if text[index : index + 2] == "*{":
            end = text.find("}*", index + 2)
            if end < 0:
                raise error("unterminated script body *{ ... }*")
            body = text[index + 2 : end]
            tokens.append(Token("BODY", body, line, column))
            line += body.count("\n")
            index = end + 2
            column += 1
            continue
        # -- string literals ------------------------------------------------------
        if char in "'\"":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                if text[end] == "\n":
                    raise error("unterminated string literal")
                end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token("STRING", text[index + 1 : end], line, column))
            column += end - index + 1
            index = end + 1
            continue
        # -- symbols ----------------------------------------------------------------
        if char in SYMBOLS:
            tokens.append(Token(SYMBOLS[char], char, line, column))
            index += 1
            column += 1
            continue
        # -- identifiers / keywords / numbers ------------------------------------------
        if char.isalnum() or char in "_-./":
            end = index
            while end < length and (text[end].isalnum() or text[end] in "_-./"):
                end += 1
            word = text[index:end]
            kind = word if word in KEYWORDS else "NAME"
            tokens.append(Token(kind, word, line, column))
            column += end - index
            index = end
            continue
        raise error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", "", line, column))
    return tokens
