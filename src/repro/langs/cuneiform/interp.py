"""The Cuneiform interpreter, exposed as an iterative task source.

This is where Hi-WAY's distinguishing feature lives (Sec. 3.3): the
interpreter reduces the script's target expressions as far as the data
allows; every task application whose arguments are concrete becomes a
pending *invocation* handed to the Workflow Driver. When an invocation
completes, its future resolves and reduction continues — possibly
discovering entirely new tasks, which is what enables unbounded loops,
conditionals and recursion.

Evaluation semantics (Cuneiform's data model):

* every value is a flat list of strings;
* applying a task to lists on *scalar* in-ports maps the task over the
  cross product of those lists; *aggregate* ports (``<name>``) consume a
  whole list;
* a conditional's guard is false iff it evaluates to the empty list;
  the untaken branch is never evaluated, so recursion terminates on
  data-dependent conditions.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CuneiformError
from repro.langs.cuneiform.ast import (
    Apply,
    Concat,
    Expr,
    If,
    Let,
    ListExpr,
    Script,
    Str,
    TaskDef,
    Var,
)
from repro.langs.cuneiform.parser import parse
from repro.workflow.model import TaskSource, TaskSpec

__all__ = ["CuneiformSource", "PENDING"]


class _Pending:
    """Marker: the expression is blocked on unfinished invocations."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<pending>"


PENDING = _Pending()

#: Guard against runaway recursion (e.g. a loop whose condition can
#: never flip). Each language-level call costs several Python frames, so
#: this stays comfortably below the interpreter's own stack limit; real
#: workflows nest tens of levels at most.
_MAX_DEPTH = 120


def _is_path(value: str) -> bool:
    """Whether a string denotes a file (as opposed to a parameter)."""
    return value.startswith("/") or value.startswith("s3://")


@dataclass
class _Invocation:
    """One concrete task application."""

    key: tuple
    task_def: TaskDef
    index: int
    spec: TaskSpec
    outputs_by_port: dict[str, str]
    resolved: bool = False
    values: dict[str, tuple[str, ...]] = field(default_factory=dict)


class CuneiformSource(TaskSource):
    """Parses and incrementally evaluates a Cuneiform script."""

    def __init__(self, text: str, name: str = "cuneiform"):
        self.name = name
        self.script: Script = parse(text)
        if not self.script.targets:
            raise CuneiformError("script has no target expression")
        self._invocations: dict[tuple, _Invocation] = {}
        self._by_task_id: dict[str, _Invocation] = {}
        self._invocation_counter: Counter = Counter()
        self._completed_counter: Counter = Counter()
        self._new_specs: list[TaskSpec] = []
        self._globals_cache: dict[str, tuple[str, ...]] = {}
        self._external_inputs: set[str] = set()
        self._target_values: Optional[list[tuple[str, ...]]] = None
        self._depth = 0
        self._out_prefix = f"/cf/{name}/"

    # -- TaskSource protocol ---------------------------------------------------

    def initial_tasks(self) -> list[TaskSpec]:
        self._reduce_targets()
        return self._drain_new_specs()

    def on_task_completed(self, task, output_sizes) -> list[TaskSpec]:
        invocation = self._by_task_id.get(task.task_id)
        if invocation is None:
            raise CuneiformError(f"unknown invocation for task {task.task_id!r}")
        self._resolve(invocation)
        self._reduce_targets()
        return self._drain_new_specs()

    def is_done(self) -> bool:
        return self._target_values is not None

    def input_files(self) -> list[str]:
        return sorted(self._external_inputs)

    def target_files(self) -> list[str]:
        if self._target_values is None:
            return []
        return sorted({
            item
            for value in self._target_values
            for item in value
            if _is_path(item)
        })

    def target_values(self) -> list[tuple[str, ...]]:
        """The fully reduced target values (only once done)."""
        if self._target_values is None:
            raise CuneiformError("workflow has not finished evaluating")
        return list(self._target_values)

    # -- reduction engine ---------------------------------------------------------

    def _drain_new_specs(self) -> list[TaskSpec]:
        specs, self._new_specs = self._new_specs, []
        return specs

    def _resolve(self, invocation: _Invocation) -> None:
        if invocation.resolved:
            return
        task_name = invocation.task_def.name
        self._completed_counter[task_name] += 1
        empty_until = invocation.task_def.empty_until
        emit_empty = (
            empty_until is not None
            and self._completed_counter[task_name] <= empty_until
        )
        for port in invocation.task_def.outports:
            if emit_empty:
                invocation.values[port.name] = ()
            else:
                invocation.values[port.name] = (invocation.outputs_by_port[port.name],)
        invocation.resolved = True

    def _reduce_targets(self) -> None:
        if self._target_values is not None:
            return
        values = []
        for target in self.script.targets:
            value = self._eval(target, {})
            values.append(value)
        if all(not isinstance(v, _Pending) for v in values):
            self._target_values = values

    def _eval(self, expr: Expr, env: dict):
        """Reduce ``expr`` to a value tuple or :data:`PENDING`."""
        if isinstance(expr, Str):
            return (expr.value,)
        if isinstance(expr, ListExpr):
            parts = [self._eval(item, env) for item in expr.items]
            if any(isinstance(p, _Pending) for p in parts):
                return PENDING
            return tuple(itertools.chain.from_iterable(parts))
        if isinstance(expr, Concat):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if isinstance(left, _Pending) or isinstance(right, _Pending):
                return PENDING
            return left + right
        if isinstance(expr, Var):
            return self._eval_var(expr.name, env)
        if isinstance(expr, Let):
            value = self._eval(expr.value, env)
            # A pending binding does not block the body unless used;
            # binding PENDING keeps evaluation lazy and correct.
            inner = dict(env)
            inner[expr.name] = value
            return self._eval(expr.body, inner)
        if isinstance(expr, If):
            condition = self._eval(expr.condition, env)
            if isinstance(condition, _Pending):
                return PENDING
            branch = expr.then_branch if condition else expr.else_branch
            return self._eval(branch, env)
        if isinstance(expr, Apply):
            return self._eval_apply(expr, env)
        raise CuneiformError(f"cannot evaluate {expr!r}")

    def _eval_var(self, name: str, env: dict):
        if name in env:
            return env[name]
        if name in self._globals_cache:
            return self._globals_cache[name]
        if name in self.script.assignments:
            value = self._eval(self.script.assignments[name], {})
            if not isinstance(value, _Pending):
                self._globals_cache[name] = value
            return value
        raise CuneiformError(f"undefined variable {name!r}")

    def _eval_apply(self, expr: Apply, env: dict):
        if expr.callee in self.script.functions:
            return self._eval_function(expr, env)
        if expr.callee in self.script.tasks:
            return self._eval_task(expr, env)
        raise CuneiformError(f"undefined task or function {expr.callee!r}")

    def _eval_function(self, expr: Apply, env: dict):
        function = self.script.functions[expr.callee]
        provided = dict(expr.args)
        missing = [p for p in function.params if p not in provided]
        extra = [name for name, _ in expr.args if name not in function.params]
        if missing or extra:
            raise CuneiformError(
                f"{expr.callee}: bad arguments (missing {missing}, extra {extra})"
            )
        evaluated = {}
        for param in function.params:
            value = self._eval(provided[param], env)
            if isinstance(value, _Pending):
                return PENDING
            evaluated[param] = value
        if self._depth >= _MAX_DEPTH:
            raise CuneiformError(
                f"recursion deeper than {_MAX_DEPTH} levels in {expr.callee!r}; "
                "does the loop condition ever flip?"
            )
        self._depth += 1
        try:
            return self._eval(function.body, evaluated)
        finally:
            self._depth -= 1

    def _eval_task(self, expr: Apply, env: dict):
        task_def = self.script.tasks[expr.callee]
        port_names = [port.name for port in task_def.inports]
        provided = dict(expr.args)
        missing = [p for p in port_names if p not in provided]
        extra = [name for name, _ in expr.args if name not in port_names]
        if missing or extra:
            raise CuneiformError(
                f"{expr.callee}: bad ports (missing {missing}, extra {extra})"
            )
        values = {}
        for port in task_def.inports:
            value = self._eval(provided[port.name], env)
            if isinstance(value, _Pending):
                return PENDING
            values[port.name] = value

        # Cross product over scalar ports; aggregate ports pass whole.
        scalar_ports = [p for p in task_def.inports if not p.aggregate]
        aggregate_ports = [p for p in task_def.inports if p.aggregate]
        axes = [[(p.name, (item,)) for item in values[p.name]] for p in scalar_ports]
        combinations = list(itertools.product(*axes)) if axes else [()]
        result: list[str] = []
        blocked = False
        first_port = task_def.outports[0].name
        for combination in combinations:
            bindings = dict(combination)
            for port in aggregate_ports:
                bindings[port.name] = values[port.name]
            invocation = self._invocation_for(task_def, bindings)
            if invocation.resolved:
                result.extend(invocation.values[first_port])
            else:
                blocked = True
        return PENDING if blocked else tuple(result)

    def _invocation_for(self, task_def: TaskDef, bindings: dict) -> _Invocation:
        key = (
            task_def.name,
            tuple(sorted((name, tuple(value)) for name, value in bindings.items())),
        )
        invocation = self._invocations.get(key)
        if invocation is not None:
            return invocation
        index = self._invocation_counter[task_def.name]
        self._invocation_counter[task_def.name] += 1
        outputs_by_port = {
            port.name: f"{self._out_prefix}{task_def.name}/{index:04d}/{port.name}"
            for port in task_def.outports
        }
        inputs: list[str] = []
        params: list[str] = []
        for _name, value in sorted(bindings.items()):
            for item in value:
                if _is_path(item):
                    if item not in inputs:
                        inputs.append(item)
                    if not item.startswith(self._out_prefix):
                        self._external_inputs.add(item)
                else:
                    params.append(item)
        spec = TaskSpec(
            tool=task_def.tool,
            inputs=inputs,
            outputs=list(outputs_by_port.values()),
            signature=task_def.name,
            command=f"{task_def.language}: {task_def.name}"
            + (f" {' '.join(params)}" if params else ""),
        )
        invocation = _Invocation(
            key=key,
            task_def=task_def,
            index=index,
            spec=spec,
            outputs_by_port=outputs_by_port,
        )
        self._invocations[key] = invocation
        self._by_task_id[spec.task_id] = invocation
        self._new_specs.append(spec)
        return invocation
