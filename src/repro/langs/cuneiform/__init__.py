"""Cuneiform: a minimal functional workflow language (iterative)."""

from repro.langs.cuneiform.ast import Script, TaskDef
from repro.langs.cuneiform.interp import CuneiformSource
from repro.langs.cuneiform.lexer import tokenize
from repro.langs.cuneiform.parser import parse

__all__ = ["CuneiformSource", "parse", "tokenize", "Script", "TaskDef"]
