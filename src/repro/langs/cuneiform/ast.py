"""Abstract syntax tree of the Cuneiform subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Expr",
    "Str",
    "ListExpr",
    "Var",
    "Apply",
    "If",
    "Let",
    "Concat",
    "Port",
    "TaskDef",
    "FunDef",
    "Assign",
    "Target",
    "Script",
]


class Expr:
    """Base class of all expressions."""


@dataclass(frozen=True)
class Str(Expr):
    """A string literal — in Cuneiform, a single-element list."""

    value: str


@dataclass(frozen=True)
class ListExpr(Expr):
    """A literal list of expressions, flattened on evaluation."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a top-level assignment or function parameter."""

    name: str


@dataclass(frozen=True)
class Apply(Expr):
    """Application of a task or function to named arguments."""

    callee: str
    args: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class If(Expr):
    """Data-dependent conditional; the untaken branch stays unevaluated."""

    condition: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class Let(Expr):
    """``let name = value; body`` — local binding."""

    name: str
    value: Expr
    body: Expr


@dataclass(frozen=True)
class Concat(Expr):
    """List concatenation (the ``+`` operator)."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class Port:
    """A task port; aggregate ports (``<name>``) consume/produce lists."""

    name: str
    aggregate: bool = False


@dataclass(frozen=True)
class TaskDef:
    """``deftask name( outs : ins )in lang *{ body }*``.

    The body is black-box script text; the interpreter only reads its
    annotations (``key: value`` lines):

    * ``tool:`` — the tool-registry profile to charge (defaults to the
      task name);
    * ``output: empty-until N`` — the first N completed invocations
      evaluate to the empty list, later ones to the produced file. This
      is the simulation stand-in for genuinely data-dependent outputs
      and drives conditionals/recursion (e.g. a convergence check).
    """

    name: str
    outports: tuple[Port, ...]
    inports: tuple[Port, ...]
    language: str = "bash"
    body: str = ""
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def tool(self) -> str:
        return self.annotations.get("tool", self.name)

    @property
    def empty_until(self) -> Optional[int]:
        spec = self.annotations.get("output")
        if spec and spec.startswith("empty-until"):
            return int(spec.split()[1])
        return None


@dataclass(frozen=True)
class FunDef:
    """``defun name( params ) = expr;`` — enables recursion."""

    name: str
    params: tuple[str, ...]
    body: Expr


@dataclass(frozen=True)
class Assign:
    """Top-level ``name = expr;``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class Target:
    """Top-level ``expr;`` — a query whose value the workflow computes."""

    expr: Expr


@dataclass
class Script:
    """A parsed Cuneiform script."""

    tasks: dict[str, TaskDef] = field(default_factory=dict)
    functions: dict[str, FunDef] = field(default_factory=dict)
    assignments: dict[str, Expr] = field(default_factory=dict)
    targets: list[Expr] = field(default_factory=list)
