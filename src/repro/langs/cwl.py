"""A Common Workflow Language (CWL) frontend.

The paper's related work singles out CWL [6] as "a YAML-based workflow
language that unifies concepts of various other languages" (supported by
Toil); Hi-WAY's language interface is explicitly designed so that adding
such a non-iterative language only requires a parser from workflow text
to tasks and dependencies (Sec. 3.2). This module is that parser for a
practical subset of CWL v1.0, accepted in its JSON serialisation (CWL
documents are YAML, and every YAML document has a canonical JSON form;
this offline environment has no YAML parser).

Supported subset:

* a ``Workflow`` document with ``inputs``, ``outputs``, and ``steps``;
* steps whose ``run`` is an inline ``CommandLineTool`` with
  ``baseCommand`` (mapped to the tool registry) and ``outputs``;
* step inputs wired via ``source`` references (``input_name`` or
  ``step/output``); workflow inputs of type ``File`` are bound to
  concrete paths at submission time, exactly like Galaxy's interactive
  input resolution.

Scatter, expressions, and subworkflows are out of scope and rejected
with clear errors.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import LanguageError
from repro.workflow.model import StaticTaskSource, TaskSpec, WorkflowGraph

__all__ = ["parse_cwl", "CwlSource"]

_UNSUPPORTED_STEP_KEYS = ("scatter", "when", "requirements")


def _listify(section) -> list[dict]:
    """CWL allows map or array forms for inputs/outputs/steps."""
    if section is None:
        return []
    if isinstance(section, dict):
        return [dict(value, id=key) for key, value in section.items()]
    if isinstance(section, list):
        return [dict(item) for item in section]
    raise LanguageError(f"expected map or array, found {type(section).__name__}")


def _strip_hash(identifier: str) -> str:
    return identifier.lstrip("#")


def parse_cwl(
    text: str,
    input_bindings: Optional[dict[str, str]] = None,
    name: Optional[str] = None,
) -> WorkflowGraph:
    """Parse a CWL Workflow (JSON serialisation) into a graph.

    ``input_bindings`` maps workflow-level ``File`` inputs to concrete
    storage paths.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LanguageError(
            f"malformed CWL JSON: {exc} (YAML documents must be converted "
            "to their JSON form first)"
        ) from exc
    if not isinstance(document, dict):
        raise LanguageError("CWL document must be a JSON object")
    if document.get("class") != "Workflow":
        raise LanguageError(
            f"expected class: Workflow, found {document.get('class')!r}"
        )
    bindings = dict(input_bindings or {})
    graph_name = name or _strip_hash(document.get("id", "cwl-workflow"))
    graph = WorkflowGraph(graph_name)

    # Workflow-level File inputs resolve to concrete paths.
    resolved: dict[str, str] = {}
    for item in _listify(document.get("inputs")):
        input_id = _strip_hash(item["id"])
        if item.get("type", "File") != "File":
            continue  # non-File parameters carry no data dependencies
        if input_id not in bindings:
            raise LanguageError(
                f"unbound CWL workflow input {input_id!r}: pass a concrete "
                "file via input_bindings"
            )
        resolved[input_id] = bindings[input_id]

    steps = _listify(document.get("steps"))
    if not steps:
        raise LanguageError("CWL workflow has no steps")

    # First pass: every step's declared outputs get concrete paths.
    produced: dict[str, str] = {}  # "step/output" -> path
    tools: dict[str, dict] = {}
    for step in steps:
        step_id = _strip_hash(step["id"])
        for key in _UNSUPPORTED_STEP_KEYS:
            if key in step:
                raise LanguageError(
                    f"step {step_id!r}: CWL feature {key!r} is not supported"
                )
        run = step.get("run")
        if not isinstance(run, dict) or run.get("class") != "CommandLineTool":
            raise LanguageError(
                f"step {step_id!r}: only inline CommandLineTool runs are "
                "supported"
            )
        tools[step_id] = run
        declared = step.get("out") or [
            _strip_hash(o["id"]) for o in _listify(run.get("outputs"))
        ]
        for output in declared:
            output_name = _strip_hash(
                output if isinstance(output, str) else output["id"]
            )
            produced[f"{step_id}/{output_name}"] = (
                f"/cwl/{graph_name}/{step_id}/{output_name}"
            )

    def resolve_source(source: str, step_id: str) -> str:
        source = _strip_hash(source)
        if source in resolved:
            return resolved[source]
        if source in produced:
            return produced[source]
        raise LanguageError(
            f"step {step_id!r}: unresolvable source {source!r}"
        )

    # Second pass: build tasks.
    for step in steps:
        step_id = _strip_hash(step["id"])
        run = tools[step_id]
        base = run.get("baseCommand")
        if isinstance(base, list):
            base = base[0] if base else None
        if not base:
            raise LanguageError(f"step {step_id!r}: missing baseCommand")
        inputs: list[str] = []
        for item in _listify(step.get("in")):
            source = item.get("source")
            if source is None:
                continue  # defaults / literal parameters
            sources = source if isinstance(source, list) else [source]
            for entry in sources:
                inputs.append(resolve_source(entry, step_id))
        outputs = sorted(
            path
            for key, path in produced.items()
            if key.startswith(f"{step_id}/")
        )
        graph.add_task(TaskSpec(
            tool=base,
            inputs=inputs,
            outputs=outputs,
            signature=base,
            task_id=f"{graph_name}-{step_id}",
            command=f"cwl:{base}",
        ))
    graph.validate()
    return graph


class CwlSource(StaticTaskSource):
    """Task source wrapping a CWL workflow document."""

    def __init__(
        self,
        text: str,
        input_bindings: Optional[dict[str, str]] = None,
        name: Optional[str] = None,
    ):
        super().__init__(parse_cwl(text, input_bindings=input_bindings, name=name))
