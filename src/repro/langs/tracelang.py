"""Re-executable provenance traces — Hi-WAY's fourth language (Sec. 3.5).

A trace file holds information about all of a workflow's tasks and data
dependencies, so it can itself be interpreted as a workflow. This module
turns a JSON-lines trace (as produced by the Provenance Manager) back
into a static task source: every successful task becomes a task spec
whose recorded output sizes serve as size hints, reproducing the run —
albeit not necessarily on the same compute nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.provenance.events import TASK_EVENT
from repro.core.provenance.stores import TraceFileStore
from repro.errors import LanguageError
from repro.workflow.model import StaticTaskSource, TaskSpec, WorkflowGraph

__all__ = ["parse_trace", "TraceSource"]


def parse_trace(text: str, name: Optional[str] = None) -> WorkflowGraph:
    """Rebuild a workflow graph from a JSON-lines provenance trace."""
    store = TraceFileStore.from_jsonl(text)
    records = store.records(kind=TASK_EVENT)
    if not records:
        raise LanguageError("trace contains no task events")
    # Retries may appear; keep the last successful record per task id.
    latest: dict[str, dict] = {}
    for record in records:
        if record["success"]:
            latest[record["task_id"]] = record
    if not latest:
        raise LanguageError("trace contains no successful task events")
    workflow_names = {
        record["workflow_name"]
        for record in store.records(kind="workflow")
        if record.get("phase") == "start"
    }
    graph_name = name or (sorted(workflow_names)[0] if workflow_names else "trace")
    graph = WorkflowGraph(f"{graph_name}-replay")
    for task_id in sorted(latest):
        record = latest[task_id]
        graph.add_task(TaskSpec(
            tool=record["tool"],
            inputs=list(record["inputs"]),
            outputs=list(record["outputs"]),
            signature=record["signature"],
            task_id=f"replay-{task_id}",
            command=record["command"],
            output_size_hints=dict(record["output_sizes"]),
        ))
    graph.validate()
    return graph


class TraceSource(StaticTaskSource):
    """Task source re-executing a recorded provenance trace."""

    def __init__(self, text: str, name: Optional[str] = None):
        super().__init__(parse_trace(text, name=name))
