"""Parser for Pegasus DAX workflows (Sec. 3.2).

DAX is Pegasus' XML workflow language: every task invocation and every
file is spelled out explicitly, so DAX workflows are static — which is
exactly what makes them eligible for Hi-WAY's static schedulers
(round-robin, HEFT). ``<uses>`` elements carry optional byte sizes that
become output-size hints for the simulation.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

from repro.errors import LanguageError
from repro.workflow.model import StaticTaskSource, TaskSpec, WorkflowGraph

__all__ = ["parse_dax", "DaxSource"]


def _local_name(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def _bytes_to_mb(value: str) -> float:
    return float(value) / 1.0e6


def parse_dax(text: str, name: str | None = None) -> WorkflowGraph:
    """Parse DAX XML into a :class:`WorkflowGraph`."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise LanguageError(f"malformed DAX XML: {exc}") from exc
    if _local_name(root.tag) != "adag":
        raise LanguageError(f"expected <adag> root, found <{_local_name(root.tag)}>")
    graph = WorkflowGraph(name or root.get("name", "dax-workflow"))
    job_outputs: dict[str, set[str]] = {}

    for element in root:
        if _local_name(element.tag) != "job":
            continue
        job_id = element.get("id")
        tool = element.get("name")
        if not job_id or not tool:
            raise LanguageError("every <job> needs 'id' and 'name' attributes")
        inputs: list[str] = []
        outputs: list[str] = []
        size_hints: dict[str, float] = {}
        for uses in element:
            if _local_name(uses.tag) != "uses":
                continue
            path = uses.get("file") or uses.get("name")
            link = uses.get("link")
            if not path or link not in ("input", "output"):
                raise LanguageError(
                    f"job {job_id}: <uses> needs 'file' and link=input|output"
                )
            if link == "input":
                inputs.append(path)
            else:
                outputs.append(path)
                size = uses.get("size")
                if size is not None:
                    size_hints[path] = _bytes_to_mb(size)
        graph.add_task(TaskSpec(
            tool=tool,
            inputs=inputs,
            outputs=outputs,
            signature=tool,
            task_id=job_id,
            output_size_hints=size_hints,
            command=f"{tool} ({job_id})",
        ))
        job_outputs[job_id] = set(outputs)

    # <child>/<parent> edges must be consistent with the file-implied DAG.
    for element in root:
        if _local_name(element.tag) != "child":
            continue
        child_id = element.get("ref")
        child = graph.tasks.get(child_id)
        if child is None:
            raise LanguageError(f"<child ref={child_id!r}> references unknown job")
        declared_parents = {
            parent.get("ref")
            for parent in element
            if _local_name(parent.tag) == "parent"
        }
        implied_parents = graph.dependencies_of(child)
        undeclared = implied_parents - declared_parents
        if undeclared:
            raise LanguageError(
                f"job {child_id}: data dependencies on {sorted(undeclared)} "
                "missing from <child>/<parent> declarations"
            )
    graph.validate()
    return graph


class DaxSource(StaticTaskSource):
    """Task source wrapping a parsed DAX workflow."""

    def __init__(self, text: str, name: str | None = None):
        super().__init__(parse_dax(text, name=name))
