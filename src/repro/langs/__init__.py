"""Workflow language frontends: Cuneiform, DAX, Galaxy, traces."""

from repro.langs.base import (
    LANGUAGES,
    detect_language,
    parse_workflow,
    register_language,
)
from repro.langs.cuneiform import CuneiformSource
from repro.langs.cwl import CwlSource, parse_cwl
from repro.langs.dax import DaxSource, parse_dax
from repro.langs.galaxy import GalaxySource, parse_galaxy
from repro.langs.tracelang import TraceSource, parse_trace

__all__ = [
    "parse_workflow",
    "detect_language",
    "register_language",
    "LANGUAGES",
    "CuneiformSource",
    "CwlSource",
    "parse_cwl",
    "DaxSource",
    "parse_dax",
    "GalaxySource",
    "parse_galaxy",
    "TraceSource",
    "parse_trace",
]
