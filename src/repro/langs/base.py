"""The multilingual Workflow Language Interface (Sec. 3.2).

Hi-WAY sunders the tight coupling of workflow languages and execution
engines: the Workflow Driver accepts any language for which a frontend
exists. This module keeps a registry of frontends and offers best-effort
format detection, so ``parse_workflow(text)`` does the right thing for
all four built-in languages. Registering a new non-iterative language
takes one function that parses text into a task source.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.errors import LanguageError
from repro.langs.cuneiform.interp import CuneiformSource
from repro.langs.cwl import CwlSource
from repro.langs.dax import DaxSource
from repro.langs.galaxy import GalaxySource
from repro.langs.tracelang import TraceSource
from repro.workflow.model import TaskSource

__all__ = ["register_language", "parse_workflow", "detect_language", "LANGUAGES"]

#: language name -> frontend(text, **kwargs) -> TaskSource
LANGUAGES: dict[str, Callable[..., TaskSource]] = {}


def register_language(name: str, frontend: Callable[..., TaskSource]) -> None:
    """Add a language frontend (extensibility hook of Sec. 3.2)."""
    LANGUAGES[name] = frontend


register_language("cuneiform", lambda text, **kw: CuneiformSource(text, **kw))
register_language("dax", lambda text, **kw: DaxSource(text, **kw))
register_language("cwl", lambda text, **kw: CwlSource(text, **kw))
register_language("galaxy", lambda text, **kw: GalaxySource(text, **kw))
register_language("trace", lambda text, **kw: TraceSource(text, **kw))


def detect_language(text: str) -> str:
    """Best-effort detection of the workflow language of ``text``."""
    stripped = text.lstrip()
    if not stripped:
        raise LanguageError("empty workflow file")
    if stripped.startswith("<"):
        return "dax"
    if stripped.startswith("{"):
        # Both Galaxy exports and JSON-lines traces start with a brace;
        # trace lines are self-contained objects carrying a "kind" field.
        first_line = stripped.splitlines()[0].strip()
        try:
            record = json.loads(first_line)
        except json.JSONDecodeError:
            record = None  # pretty-printed (multi-line) JSON document
        if isinstance(record, dict) and "kind" in record:
            return "trace"
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            return "galaxy"  # fragments; let the frontend report details
        if isinstance(document, dict) and document.get("class") == "Workflow":
            return "cwl"
        return "galaxy"
    return "cuneiform"


def parse_workflow(
    text: str, language: Optional[str] = None, **kwargs
) -> TaskSource:
    """Parse ``text`` in the given (or detected) language."""
    name = language or detect_language(text)
    try:
        frontend = LANGUAGES[name]
    except KeyError:
        raise LanguageError(
            f"unknown workflow language {name!r}; known: {sorted(LANGUAGES)}"
        ) from None
    return frontend(text, **kwargs)
