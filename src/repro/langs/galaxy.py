"""Parser for exported Galaxy workflows (Sec. 3.2).

Galaxy workflows are assembled in a web GUI and exported to JSON. The
export names tools and wires step outputs to step inputs, but leaves the
workflow's *input datasets* as placeholders ("input ports serve as
placeholders for the input files, which are resolved interactively when
the workflow is committed to Hi-WAY for execution") — hence the
``input_bindings`` argument mapping each data-input step's label to a
concrete HDFS path.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import LanguageError
from repro.workflow.model import StaticTaskSource, TaskSpec, WorkflowGraph

__all__ = ["parse_galaxy", "GalaxySource"]

_INPUT_TYPES = {"data_input", "data_collection_input"}


def parse_galaxy(
    text: str,
    input_bindings: Optional[dict[str, str]] = None,
    name: Optional[str] = None,
) -> WorkflowGraph:
    """Parse a Galaxy JSON export into a :class:`WorkflowGraph`.

    ``input_bindings`` maps data-input step labels to file paths; every
    input step must be bound or parsing fails (matching Hi-WAY's
    interactive resolution requirement).
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LanguageError(f"malformed Galaxy JSON: {exc}") from exc
    if not isinstance(document, dict) or "steps" not in document:
        raise LanguageError("Galaxy export needs a top-level 'steps' object")
    bindings = dict(input_bindings or {})
    workflow_name = name or document.get("name", "galaxy-workflow")
    graph = WorkflowGraph(workflow_name)

    steps = document["steps"]
    # step id -> {output name -> path}
    produced: dict[str, dict[str, str]] = {}

    ordered = sorted(steps.items(), key=lambda item: int(item[0]))
    # First pass: resolve what every step produces.
    for step_id, step in ordered:
        step_type = step.get("type", "tool")
        outputs = step.get("outputs", [])
        if step_type in _INPUT_TYPES:
            label = step.get("label") or step.get("name") or f"input-{step_id}"
            if label not in bindings:
                raise LanguageError(
                    f"unbound Galaxy input step {label!r}: pass a concrete "
                    "file via input_bindings (resolved interactively in Hi-WAY)"
                )
            produced[step_id] = {"output": bindings[label]}
            continue
        tool_id = step.get("tool_id")
        if not tool_id:
            raise LanguageError(f"step {step_id}: tool steps need a tool_id")
        names = [o.get("name", "out") for o in outputs] or ["out"]
        produced[step_id] = {
            output_name: f"/galaxy/{workflow_name}/{step_id}/{output_name}"
            for output_name in names
        }

    # Second pass: build tasks with resolved connections.
    for step_id, step in ordered:
        if step.get("type", "tool") in _INPUT_TYPES:
            continue
        tool_id = step["tool_id"]
        inputs: list[str] = []
        for connection in step.get("input_connections", {}).values():
            links = connection if isinstance(connection, list) else [connection]
            for link in links:
                source_id = str(link["id"])
                output_name = link.get("output_name", "output")
                source_outputs = produced.get(source_id)
                if source_outputs is None:
                    raise LanguageError(
                        f"step {step_id}: connection references unknown step "
                        f"{source_id}"
                    )
                path = source_outputs.get(output_name)
                if path is None:
                    # Galaxy exports sometimes reference the default port.
                    path = next(iter(source_outputs.values()))
                inputs.append(path)
        graph.add_task(TaskSpec(
            tool=tool_id,
            inputs=inputs,
            outputs=list(produced[step_id].values()),
            signature=tool_id,
            task_id=f"{workflow_name}-step-{step_id}",
            command=f"galaxy:{tool_id}",
        ))
    graph.validate()
    return graph


class GalaxySource(StaticTaskSource):
    """Task source wrapping a Galaxy workflow export."""

    def __init__(
        self,
        text: str,
        input_bindings: Optional[dict[str, str]] = None,
        name: Optional[str] = None,
    ):
        super().__init__(parse_galaxy(text, input_bindings=input_bindings, name=name))
