"""repro — a faithful reproduction of "Hi-WAY: Execution of Scientific
Workflows on Hadoop YARN" (Bux et al., EDBT 2017) on a simulated Hadoop
substrate.

Quickstart::

    from repro import Cluster, ClusterSpec, Environment, HiWay, M3_LARGE
    from repro.langs import parse_workflow

    env = Environment()
    cluster = Cluster(env, ClusterSpec(worker_spec=M3_LARGE, worker_count=4))
    hiway = HiWay(cluster)
    hiway.install_everywhere("sort", "grep")
    hiway.stage_inputs({"/in/data": 64.0})
    result = hiway.run(parse_workflow("x = sort-task( i: '/in/data' ); x;"))

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.cluster import (
    C3_2XLARGE,
    Cluster,
    ClusterSpec,
    M3_LARGE,
    NodeSpec,
    XEON_E5_2620,
)
from repro.core import (
    HiWay,
    HiWayApplicationMaster,
    HiWayConfig,
    ProvenanceManager,
    WorkflowResult,
)
from repro.hdfs import HdfsClient
from repro.sim import Environment
from repro.workflow import StaticTaskSource, TaskSpec, WorkflowGraph
from repro.yarn import ResourceManager

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Cluster",
    "ClusterSpec",
    "NodeSpec",
    "M3_LARGE",
    "C3_2XLARGE",
    "XEON_E5_2620",
    "HdfsClient",
    "ResourceManager",
    "HiWay",
    "HiWayConfig",
    "HiWayApplicationMaster",
    "WorkflowResult",
    "ProvenanceManager",
    "TaskSpec",
    "WorkflowGraph",
    "StaticTaskSource",
    "__version__",
]
