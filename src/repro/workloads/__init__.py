"""The paper's evaluation workloads: SNV calling, RNA-seq, Montage, k-means."""

from repro.workloads.kmeans import KMEANS_TOOLS, kmeans_cuneiform, kmeans_inputs
from repro.workloads.montage import (
    MONTAGE_TOOLS,
    images_for_degree,
    montage_dax,
    montage_inputs,
)
from repro.workloads.rnaseq import (
    RNASEQ_TOOLS,
    trapline_galaxy_json,
    trapline_input_bindings,
    trapline_inputs,
)
from repro.workloads.snv import (
    SNV_TOOLS,
    sample_read_files,
    snv_cuneiform,
    snv_graph,
)

__all__ = [
    "SNV_TOOLS",
    "sample_read_files",
    "snv_cuneiform",
    "snv_graph",
    "RNASEQ_TOOLS",
    "trapline_galaxy_json",
    "trapline_input_bindings",
    "trapline_inputs",
    "MONTAGE_TOOLS",
    "montage_dax",
    "montage_inputs",
    "images_for_degree",
    "KMEANS_TOOLS",
    "kmeans_cuneiform",
    "kmeans_inputs",
]
