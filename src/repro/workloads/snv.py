"""The single-nucleotide-variant calling workflow (Sec. 4.1).

Genomic reads are aligned against a reference with Bowtie 2, alignments
are sorted with SAMtools, variants are called with VarScan and annotated
with ANNOVAR. Input reads come from the 1000 Genomes Project: one
*sample* is eight files of roughly one gigabyte each.

The paper implemented this workflow twice — in Cuneiform (for Hi-WAY)
and in Tez — and this module does the same: :func:`snv_cuneiform`
renders the Cuneiform script, :func:`snv_graph` builds the equivalent
static DAG for the Tez baseline. The reference genome and its index are
installed software (staged by recipes onto every node), not workflow
inputs, matching the paper's setup.
"""

from __future__ import annotations

from repro.workflow.model import TaskSpec, WorkflowGraph

__all__ = [
    "SNV_TOOLS",
    "sample_read_files",
    "snv_cuneiform",
    "snv_graph",
    "FILES_PER_SAMPLE",
    "MB_PER_READ_FILE",
]

#: Executables the workflow needs on every node.
SNV_TOOLS = ("bowtie2", "samtools-sort", "varscan", "annovar", "cram-compress")

#: One 1000-Genomes sample: eight files of about a gigabyte (Sec. 4.1).
FILES_PER_SAMPLE = 8
MB_PER_READ_FILE = 1024.0


def sample_read_files(
    n_samples: int,
    files_per_sample: int = FILES_PER_SAMPLE,
    mb_per_file: float = MB_PER_READ_FILE,
    from_s3: bool = False,
) -> dict[str, float]:
    """Input manifest: read-file path -> size in MB.

    With ``from_s3`` the reads live in the 1000-Genomes S3 bucket and
    are streamed in during execution (the second Sec. 4.1 experiment);
    otherwise they are staged into HDFS beforehand.
    """
    prefix = "s3://1000genomes/reads" if from_s3 else "/data/1000genomes/reads"
    return {
        f"{prefix}/sample-{sample:03d}/reads-{part}.fastq": mb_per_file
        for sample in range(n_samples)
        for part in range(files_per_sample)
    }


def _samples_from_manifest(inputs: dict[str, float]) -> dict[str, list[str]]:
    """Group a read manifest back into samples."""
    samples: dict[str, list[str]] = {}
    for path in sorted(inputs):
        sample = path.rsplit("/", 2)[-2]
        samples.setdefault(sample, []).append(path)
    return samples


def snv_cuneiform(inputs: dict[str, float], use_cram: bool = False) -> str:
    """Render the variant-calling workflow as a Cuneiform script.

    ``use_cram`` inserts the referential-compression step that shrank
    intermediate alignments in the terabyte-scale experiment.
    """
    lines = [
        "% Single nucleotide variant calling [31], as run in Sec. 4.1.",
        "deftask align( sam : reads )in bash *{ tool: bowtie2 }*",
        "deftask sort-alignments( bam : <sams> )in bash *{ tool: samtools-sort }*",
        "deftask call-variants( vcf : bam )in bash *{ tool: varscan }*",
        "deftask annotate( csv : vcf )in bash *{ tool: annovar }*",
    ]
    if use_cram:
        lines.append(
            "deftask compress( cram : sam )in bash *{ tool: cram-compress }*"
        )
    sample_vars = []
    for index, (sample, paths) in enumerate(_samples_from_manifest(inputs).items()):
        reads = " ".join(f"'{path}'" for path in paths)
        aligned = f"align( reads: [{reads}] )"
        if use_cram:
            aligned = f"compress( sam: {aligned} )"
        variable = f"result{index}"
        lines.append(
            f"{variable} = annotate( vcf: call-variants( bam: "
            f"sort-alignments( sams: {aligned} ) ) );  % {sample}"
        )
        sample_vars.append(variable)
    lines.append("[ " + " ".join(sample_vars) + " ];")
    return "\n".join(lines)


def snv_graph(inputs: dict[str, float], use_cram: bool = False) -> WorkflowGraph:
    """The same workflow as an explicit DAG (the Tez re-implementation)."""
    graph = WorkflowGraph("snv-calling")
    for sample, paths in _samples_from_manifest(inputs).items():
        sams = []
        for part, path in enumerate(paths):
            sam = f"/work/{sample}/aligned-{part}.sam"
            graph.add_task(TaskSpec(
                tool="bowtie2", inputs=[path], outputs=[sam],
                task_id=f"align-{sample}-{part}",
            ))
            if use_cram:
                cram = f"/work/{sample}/aligned-{part}.cram"
                graph.add_task(TaskSpec(
                    tool="cram-compress", inputs=[sam], outputs=[cram],
                    task_id=f"compress-{sample}-{part}",
                ))
                sams.append(cram)
            else:
                sams.append(sam)
        bam = f"/work/{sample}/sorted.bam"
        vcf = f"/work/{sample}/variants.vcf"
        csv = f"/out/{sample}/annotated.csv"
        graph.add_task(TaskSpec(
            tool="samtools-sort", inputs=sams, outputs=[bam],
            task_id=f"sort-{sample}",
        ))
        graph.add_task(TaskSpec(
            tool="varscan", inputs=[bam], outputs=[vcf],
            task_id=f"varscan-{sample}",
        ))
        graph.add_task(TaskSpec(
            tool="annovar", inputs=[vcf], outputs=[csv],
            task_id=f"annovar-{sample}",
        ))
    graph.validate()
    return graph
