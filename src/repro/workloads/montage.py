"""Montage mosaic workflows as Pegasus DAX (Sec. 4.3).

The Montage toolkit generates DAX workflows that assemble sky mosaics:
telescope images are re-projected onto a common plane (mProjectPP),
overlapping pairs are analysed (mDiffFit), a background model is fitted
(mConcatFit + mBgModel), images are background-corrected (mBackground)
and finally merged (mImgtbl + mAdd), shrunk and rendered (mShrink,
mJPEG). A 0.25-degree mosaic yields eleven input images, so the maximum
degree of parallelism is eleven during the projection and background
correction phases — the exact shape of the Fig. 9 workflow.
"""

from __future__ import annotations

__all__ = ["MONTAGE_TOOLS", "montage_dax", "montage_inputs", "images_for_degree"]

#: Executables the workflow needs on every node.
MONTAGE_TOOLS = (
    "mProjectPP",
    "mDiffFit",
    "mConcatFit",
    "mBgModel",
    "mBackground",
    "mImgtbl",
    "mAdd",
    "mShrink",
    "mJPEG",
)

#: Approximate 2MASS tile size in MB.
IMAGE_MB = 4.2


def images_for_degree(degree: float) -> int:
    """Number of input tiles for a mosaic of the given size.

    Calibrated so the paper's 0.25-degree workflow has parallelism 11.
    """
    return max(3, round(degree * 44))


def montage_inputs(degree: float = 0.25) -> dict[str, float]:
    """Input manifest: raw image path -> size in MB."""
    return {
        f"/data/2mass/raw-{index:02d}.fits": IMAGE_MB
        for index in range(images_for_degree(degree))
    }


def _mb(size_mb: float) -> str:
    """MB -> DAX byte-count attribute."""
    return str(int(size_mb * 1.0e6))


def montage_dax(degree: float = 0.25, work_prefix: str = "") -> str:
    """Render the mosaic workflow as Pegasus DAX XML.

    ``work_prefix`` relocates the workflow-private intermediate
    (``/work/...``) and output (``/out/...``) paths under a unique HDFS
    prefix (e.g. ``/svc/job-0042``) so several mosaics can run
    concurrently against one shared set of raw ``/data/2mass`` images
    without colliding — what the open-loop service harness does.
    """
    n = images_for_degree(degree)
    jobs: list[str] = []
    children: list[str] = []

    projected = [f"/work/proj-{i:02d}.fits" for i in range(n)]
    proj_mb = IMAGE_MB * 1.7
    for i in range(n):
        jobs.append(
            f'  <job id="proj{i:02d}" name="mProjectPP">\n'
            f'    <uses file="/data/2mass/raw-{i:02d}.fits" link="input" '
            f'size="{_mb(IMAGE_MB)}"/>\n'
            f'    <uses file="{projected[i]}" link="output" size="{_mb(proj_mb)}"/>\n'
            f"  </job>"
        )

    # Overlap analysis on adjacent tile pairs.
    fits = []
    for i in range(n - 1):
        fit = f"/work/fit-{i:02d}.txt"
        fits.append(fit)
        jobs.append(
            f'  <job id="diff{i:02d}" name="mDiffFit">\n'
            f'    <uses file="{projected[i]}" link="input"/>\n'
            f'    <uses file="{projected[i + 1]}" link="input"/>\n'
            f'    <uses file="{fit}" link="output" size="{_mb(0.2)}"/>\n'
            f"  </job>"
        )
        children.append(
            f'  <child ref="diff{i:02d}">\n'
            f'    <parent ref="proj{i:02d}"/>\n'
            f'    <parent ref="proj{i + 1:02d}"/>\n'
            f"  </child>"
        )

    concat_uses = "".join(f'    <uses file="{fit}" link="input"/>\n' for fit in fits)
    concat_parents = "".join(
        f'    <parent ref="diff{i:02d}"/>\n' for i in range(n - 1)
    )
    jobs.append(
        f'  <job id="concat" name="mConcatFit">\n{concat_uses}'
        f'    <uses file="/work/fits.tbl" link="output" size="{_mb(1.5)}"/>\n'
        f"  </job>"
    )
    children.append(f'  <child ref="concat">\n{concat_parents}  </child>')

    jobs.append(
        '  <job id="bgmodel" name="mBgModel">\n'
        '    <uses file="/work/fits.tbl" link="input"/>\n'
        f'    <uses file="/work/corrections.tbl" link="output" size="{_mb(1.0)}"/>\n'
        "  </job>"
    )
    children.append(
        '  <child ref="bgmodel">\n    <parent ref="concat"/>\n  </child>'
    )

    corrected = [f"/work/corr-{i:02d}.fits" for i in range(n)]
    for i in range(n):
        jobs.append(
            f'  <job id="bg{i:02d}" name="mBackground">\n'
            f'    <uses file="{projected[i]}" link="input"/>\n'
            '    <uses file="/work/corrections.tbl" link="input"/>\n'
            f'    <uses file="{corrected[i]}" link="output" size="{_mb(proj_mb)}"/>\n'
            f"  </job>"
        )
        children.append(
            f'  <child ref="bg{i:02d}">\n'
            f'    <parent ref="proj{i:02d}"/>\n'
            '    <parent ref="bgmodel"/>\n'
            "  </child>"
        )

    imgtbl_uses = "".join(
        f'    <uses file="{path}" link="input"/>\n' for path in corrected
    )
    imgtbl_parents = "".join(f'    <parent ref="bg{i:02d}"/>\n' for i in range(n))
    jobs.append(
        f'  <job id="imgtbl" name="mImgtbl">\n{imgtbl_uses}'
        f'    <uses file="/work/images.tbl" link="output" size="{_mb(0.5)}"/>\n'
        "  </job>"
    )
    children.append(f'  <child ref="imgtbl">\n{imgtbl_parents}  </child>')

    add_uses = imgtbl_uses + '    <uses file="/work/images.tbl" link="input"/>\n'
    mosaic_mb = proj_mb * n * 1.1
    jobs.append(
        f'  <job id="add" name="mAdd">\n{add_uses}'
        f'    <uses file="/out/mosaic.fits" link="output" size="{_mb(mosaic_mb)}"/>\n'
        "  </job>"
    )
    children.append(
        f'  <child ref="add">\n{imgtbl_parents}'
        '    <parent ref="imgtbl"/>\n  </child>'
    )

    jobs.append(
        '  <job id="shrink" name="mShrink">\n'
        '    <uses file="/out/mosaic.fits" link="input"/>\n'
        f'    <uses file="/out/mosaic-small.fits" link="output" '
        f'size="{_mb(mosaic_mb * 0.25)}"/>\n'
        "  </job>"
    )
    children.append('  <child ref="shrink">\n    <parent ref="add"/>\n  </child>')
    jobs.append(
        '  <job id="jpeg" name="mJPEG">\n'
        '    <uses file="/out/mosaic-small.fits" link="input"/>\n'
        f'    <uses file="/out/mosaic.jpg" link="output" '
        f'size="{_mb(mosaic_mb * 0.025)}"/>\n'
        "  </job>"
    )
    children.append('  <child ref="jpeg">\n    <parent ref="shrink"/>\n  </child>')

    body = "\n".join(jobs) + "\n" + "\n".join(children)
    if work_prefix:
        prefix = work_prefix.rstrip("/")
        # Only the workflow-private paths move; the raw /data inputs
        # stay shared across concurrent runs.
        body = body.replace('file="/work/', f'file="{prefix}/work/')
        body = body.replace('file="/out/', f'file="{prefix}/out/')
    return (
        f'<adag name="montage-{degree}">\n{body}\n</adag>\n'
    )
