"""The iterative k-means workflow (Sec. 3.3, published in [9]).

k-means iteratively refines an initial random clustering until
convergence — only expressible as a workflow through conditional task
execution and unbounded iteration, which is exactly the feature the
Cuneiform frontend provides. Each iteration assigns points to centroids
(parallelisable over data partitions), recomputes centroids, and checks
convergence; the convergence task's ``empty-until`` annotation stands in
for the data-dependent check of the real black-box tool.
"""

from __future__ import annotations

__all__ = ["KMEANS_TOOLS", "kmeans_cuneiform", "kmeans_inputs"]

#: Executables the workflow needs on every node.
KMEANS_TOOLS = ("kmeans-assign", "kmeans-update", "kmeans-converged")


def kmeans_inputs(partitions: int = 4, mb_per_partition: float = 64.0) -> dict[str, float]:
    """Input manifest: point-partition path -> size in MB."""
    files = {
        f"/data/points/part-{index:02d}.csv": mb_per_partition
        for index in range(partitions)
    }
    files["/data/points/centroids-seed.csv"] = 0.1
    return files


def kmeans_cuneiform(partitions: int = 4, iterations_until_convergence: int = 4) -> str:
    """Render the iterative k-means workflow as a Cuneiform script.

    ``iterations_until_convergence`` controls when the convergence task
    first reports success (the simulated stand-in for the real residual
    threshold check).
    """
    parts = " ".join(
        f"'/data/points/part-{index:02d}.csv'" for index in range(partitions)
    )
    return f"""
% k-means clustering: iteratively refine centroids until convergence [9].
deftask assign( labels : points centroids )in bash *{{
    tool: kmeans-assign
}}*
deftask update( centroids : <labels> )in bash *{{
    tool: kmeans-update
}}*
deftask check-converged( flag : old new )in bash *{{
    tool: kmeans-converged
    output: empty-until {iterations_until_convergence}
}}*

points = [{parts}];

defun iterate( centroids ) =
    let labels = assign( points: points, centroids: centroids );
    let next = update( labels: labels );
    if check-converged( old: centroids, new: next )
    then next
    else iterate( centroids: next )
    end;

iterate( centroids: '/data/points/centroids-seed.csv' );
"""
