"""The TRAPLINE RNA-seq workflow as a Galaxy export (Sec. 4.2).

Wolfien et al.'s TRAPLINE pipeline compares two genomic samples, each in
triplicate: quality control and trimming per replicate, TopHat2 mapping,
Cufflinks transcript assembly, then a merge and a differential
comparison — giving the workflow its degree of parallelism of six across
most of its parts, with a sequential tail.

The generator emits the same JSON structure Galaxy's export produces, so
it exercises the real Galaxy frontend (``repro.langs.galaxy``).
"""

from __future__ import annotations

import json

__all__ = [
    "RNASEQ_TOOLS",
    "trapline_galaxy_json",
    "trapline_input_bindings",
    "trapline_inputs",
    "REPLICATES_PER_SAMPLE",
    "MB_PER_REPLICATE",
]

#: Executables the workflow needs on every node.
RNASEQ_TOOLS = (
    "fastqc",
    "trimmomatic",
    "tophat2",
    "cufflinks",
    "cuffmerge",
    "cuffdiff",
)

#: Two conditions (young vs aged mice), three replicates each.
REPLICATES_PER_SAMPLE = 3
#: Total input "more than ten gigabytes" across six replicates.
MB_PER_REPLICATE = 1_750.0


def _replicate_labels() -> list[str]:
    return [
        f"{condition}-rep{replicate}"
        for condition in ("young", "aged")
        for replicate in range(REPLICATES_PER_SAMPLE)
    ]


def trapline_inputs(mb_per_replicate: float = MB_PER_REPLICATE) -> dict[str, float]:
    """Input manifest: GEO read file path -> size in MB."""
    return {
        f"/data/geo/GSE62762/{label}.fastq": mb_per_replicate
        for label in _replicate_labels()
    }


def trapline_input_bindings() -> dict[str, str]:
    """Galaxy input-step label -> concrete file path."""
    return {
        f"reads-{label}": f"/data/geo/GSE62762/{label}.fastq"
        for label in _replicate_labels()
    }


def trapline_galaxy_json() -> str:
    """The TRAPLINE workflow as a Galaxy JSON export."""
    steps: dict[str, dict] = {}
    step_id = 0

    def add_step(step: dict) -> int:
        nonlocal step_id
        step["id"] = step_id
        steps[str(step_id)] = step
        step_id += 1
        return step["id"]

    cufflinks_ids = []
    tophat_ids = []
    for label in _replicate_labels():
        input_id = add_step({
            "type": "data_input",
            "label": f"reads-{label}",
            "outputs": [{"name": "output"}],
        })
        fastqc_id = add_step({
            "type": "tool",
            "tool_id": "fastqc",
            "input_connections": {
                "input": {"id": input_id, "output_name": "output"}
            },
            "outputs": [{"name": "report"}],
        })
        trim_id = add_step({
            "type": "tool",
            "tool_id": "trimmomatic",
            "input_connections": {
                "input": {"id": input_id, "output_name": "output"}
            },
            "outputs": [{"name": "trimmed"}],
        })
        tophat_id = add_step({
            "type": "tool",
            "tool_id": "tophat2",
            "input_connections": {
                "input": {"id": trim_id, "output_name": "trimmed"}
            },
            "outputs": [{"name": "accepted_hits"}],
        })
        tophat_ids.append(tophat_id)
        cufflinks_id = add_step({
            "type": "tool",
            "tool_id": "cufflinks",
            "input_connections": {
                "input": {"id": tophat_id, "output_name": "accepted_hits"}
            },
            "outputs": [{"name": "transcripts"}],
        })
        cufflinks_ids.append(cufflinks_id)

    merge_id = add_step({
        "type": "tool",
        "tool_id": "cuffmerge",
        "input_connections": {
            "inputs": [
                {"id": cid, "output_name": "transcripts"}
                for cid in cufflinks_ids
            ]
        },
        "outputs": [{"name": "merged_gtf"}],
    })
    add_step({
        "type": "tool",
        "tool_id": "cuffdiff",
        "input_connections": {
            "gtf": {"id": merge_id, "output_name": "merged_gtf"},
            "alignments": [
                {"id": tid, "output_name": "accepted_hits"} for tid in tophat_ids
            ],
        },
        "outputs": [{"name": "differential_expression"}],
    })
    return json.dumps({"name": "TRAPLINE", "steps": steps}, indent=2)
