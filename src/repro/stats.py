"""Dependency-free descriptive statistics shared across the stack.

These are the single definitions used by the offline experiment tables
(:mod:`repro.experiments`), the end-of-run SLO report
(:mod:`repro.service.slo`) and the streaming monitor
(:mod:`repro.obs.live`) — sharing one ``percentile`` is what lets a
streaming window and an offline recomputation over the same journal
agree *exactly*, not just approximately.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "std", "median", "minutes", "jain_index", "percentile"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    """Median (0 for an empty sequence)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def minutes(seconds: float) -> float:
    """Seconds -> minutes."""
    return seconds / 60.0


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every tenant got identical service, ``1/n`` when one tenant
    got everything (1.0 for the degenerate empty/all-zero cases).
    """
    values = list(values)
    square_sum = sum(v * v for v in values)
    if not values or square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100, linear interpolation; 0 if empty)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction
