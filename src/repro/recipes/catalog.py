"""Built-in recipes for every workflow of the evaluation (Sec. 3.6).

Mirrors the public recipe collection on saasfee.io: one recipe per
execution-ready workflow, each declaring the software to install and the
input data to obtain, plus a base recipe for Hi-WAY itself.
"""

from __future__ import annotations

from repro.recipes.recipe import Recipe, RecipeBook
from repro.tools.generic import generic_registry
from repro.workloads.kmeans import KMEANS_TOOLS, kmeans_inputs
from repro.workloads.montage import MONTAGE_TOOLS, montage_inputs
from repro.workloads.rnaseq import RNASEQ_TOOLS, trapline_inputs
from repro.workloads.snv import SNV_TOOLS, sample_read_files

__all__ = ["builtin_recipe_book"]


def builtin_recipe_book(
    snv_samples: int = 2,
    snv_mb_per_file: float = 1024.0,
    snv_from_s3: bool = False,
    rnaseq_mb_per_replicate: float = 1750.0,
    montage_degree: float = 0.25,
    kmeans_partitions: int = 4,
) -> RecipeBook:
    """The default recipe collection, parameterised like the experiments."""
    book = RecipeBook()
    book.register(Recipe.build(
        name="hiway-base",
        packages=tuple(generic_registry().names()),
    ))
    book.register(Recipe.build(
        name="snv-calling",
        packages=SNV_TOOLS,
        data=sample_read_files(
            snv_samples, mb_per_file=snv_mb_per_file, from_s3=snv_from_s3
        ),
        depends_on=("hiway-base",),
    ))
    book.register(Recipe.build(
        name="trapline",
        packages=RNASEQ_TOOLS,
        data=trapline_inputs(mb_per_replicate=rnaseq_mb_per_replicate),
        depends_on=("hiway-base",),
    ))
    book.register(Recipe.build(
        name="montage",
        packages=MONTAGE_TOOLS,
        data=montage_inputs(montage_degree),
        depends_on=("hiway-base",),
    ))
    book.register(Recipe.build(
        name="kmeans",
        packages=KMEANS_TOOLS,
        data=kmeans_inputs(partitions=kmeans_partitions),
        depends_on=("hiway-base",),
    ))
    return book
