"""Chef-style recipes (Sec. 3.6).

The black-box model dictates that (1) all of a workflow's software
dependencies must be available on every compute node YARN manages, and
(2) all input data must be placed in HDFS (or be reachable, e.g. on S3)
before execution. The paper automates this with Chef recipes run through
Karamel; here a :class:`Recipe` declares the same two aspects —
``packages`` to install and ``data`` to stage — plus recipe dependencies,
and the orchestrator applies them to a simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecipeError

__all__ = ["DataItem", "Recipe", "RecipeBook"]


@dataclass(frozen=True)
class DataItem:
    """One input dataset a recipe stages."""

    path: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise RecipeError(f"{self.path}: negative size")

    @property
    def external(self) -> bool:
        """Whether the data stays on S3 rather than being put in HDFS."""
        return self.path.startswith("s3://")


@dataclass(frozen=True)
class Recipe:
    """Declarative setup of software and data for one workflow."""

    name: str
    #: Executables installed on every node.
    packages: tuple[str, ...] = ()
    #: Datasets staged into HDFS / registered on S3.
    data: tuple[DataItem, ...] = ()
    #: Names of recipes that must be applied first.
    depends_on: tuple[str, ...] = ()

    @classmethod
    def build(
        cls,
        name: str,
        packages: tuple[str, ...] | list[str] = (),
        data: dict[str, float] | None = None,
        depends_on: tuple[str, ...] | list[str] = (),
    ) -> "Recipe":
        """Convenience constructor taking a plain path->MB mapping."""
        items = tuple(
            DataItem(path, size_mb) for path, size_mb in sorted((data or {}).items())
        )
        return cls(
            name=name,
            packages=tuple(packages),
            data=items,
            depends_on=tuple(depends_on),
        )


class RecipeBook:
    """A named collection of recipes with dependency resolution."""

    def __init__(self):
        self._recipes: dict[str, Recipe] = {}

    def register(self, recipe: Recipe) -> Recipe:
        if recipe.name in self._recipes:
            raise RecipeError(f"recipe {recipe.name!r} already registered")
        self._recipes[recipe.name] = recipe
        return recipe

    def get(self, name: str) -> Recipe:
        try:
            return self._recipes[name]
        except KeyError:
            raise RecipeError(f"unknown recipe {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._recipes)

    def resolve(self, names: list[str]) -> list[Recipe]:
        """Dependency-ordered list of recipes to apply for ``names``."""
        ordered: list[Recipe] = []
        seen: set[str] = set()
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            if name in visiting:
                raise RecipeError(f"recipe dependency cycle through {name!r}")
            visiting.add(name)
            recipe = self.get(name)
            for dependency in recipe.depends_on:
                visit(dependency)
            visiting.discard(name)
            seen.add(name)
            ordered.append(recipe)

        for name in names:
            visit(name)
        return ordered
