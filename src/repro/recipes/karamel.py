"""Karamel-style orchestration (Sec. 3.6).

Karamel runs Chef recipes to bring up a complete Hi-WAY execution
environment — Hadoop, Hi-WAY, and selected execution-ready workflows,
including their input data — "with only a few clicks". The
:class:`Karamel` orchestrator does the same for the simulated substrate:
given a cluster definition and recipe names, it builds the cluster,
brings up HDFS + YARN + Hi-WAY, installs every package on every node,
and stages all declared data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.specs import ClusterSpec
from repro.core.client import HiWay
from repro.core.config import HiWayConfig
from repro.recipes.recipe import Recipe, RecipeBook
from repro.sim.engine import Environment

__all__ = ["ClusterDefinition", "Karamel"]


@dataclass
class ClusterDefinition:
    """The cluster section of a Karamel definition file."""

    name: str
    spec: ClusterSpec
    recipes: list[str] = field(default_factory=list)
    hiway_config: Optional[HiWayConfig] = None
    max_containers_per_node: Optional[int] = None
    record_series: bool = False


class Karamel:
    """Applies recipes to bring up ready-to-run Hi-WAY installations."""

    def __init__(self, book: RecipeBook):
        self.book = book

    def launch(
        self, definition: ClusterDefinition, env: Optional[Environment] = None
    ) -> HiWay:
        """Provision a cluster per ``definition`` and return Hi-WAY on it.

        Staging the declared input data advances the simulation clock
        (the writes go through the normal HDFS data path), mirroring the
        real setup cost; package installation is instantaneous, as in
        the paper it happens before the measured experiment.
        """
        env = env or Environment()
        cluster = Cluster(env, definition.spec, record_series=definition.record_series)
        hiway = HiWay(
            cluster,
            config=definition.hiway_config,
            max_containers_per_node=definition.max_containers_per_node,
        )
        for recipe in self.book.resolve(definition.recipes):
            self.apply(recipe, hiway)
        return hiway

    def apply(self, recipe: Recipe, hiway: HiWay) -> None:
        """Apply one recipe to an existing installation."""
        if recipe.packages:
            hiway.install_everywhere(*recipe.packages)
        staged = {
            item.path: item.size_mb for item in recipe.data if not item.external
        }
        for item in recipe.data:
            if item.external:
                hiway.hdfs.register_external(item.path, item.size_mb)
        if staged:
            hiway.stage_inputs(staged)
