"""Reproducible installation: Chef-style recipes and Karamel orchestration."""

from repro.recipes.catalog import builtin_recipe_book
from repro.recipes.karamel import ClusterDefinition, Karamel
from repro.recipes.recipe import DataItem, Recipe, RecipeBook

__all__ = [
    "Recipe",
    "RecipeBook",
    "DataItem",
    "Karamel",
    "ClusterDefinition",
    "builtin_recipe_book",
]
