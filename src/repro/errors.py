"""Exception hierarchy shared across the repro package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for inconsistencies inside the discrete-event kernel."""


class Interrupt(ReproError):
    """Thrown into a simulation process that is interrupted.

    Mirrors SimPy's ``Interrupt``: the ``cause`` attribute carries the value
    passed to :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class HdfsError(ReproError):
    """Raised for HDFS namespace or replication problems."""


class FileNotFoundInHdfs(HdfsError):
    """Raised when a path is opened that does not exist in the namespace."""


class YarnError(ReproError):
    """Raised for YARN protocol violations or resource exhaustion."""


class ContainerError(YarnError):
    """Raised when a container fails during launch or execution."""


class AdmissionError(YarnError):
    """Raised when the RM's admission controller refuses a registration."""


class WorkflowError(ReproError):
    """Raised for malformed workflow definitions."""


class LanguageError(WorkflowError):
    """Raised when a workflow file cannot be parsed."""


class CuneiformError(LanguageError):
    """Raised for syntax or evaluation errors in Cuneiform scripts."""


class SchedulingError(ReproError):
    """Raised when a scheduler is asked for an impossible placement."""


class ProvenanceError(ReproError):
    """Raised for malformed or inconsistent provenance records."""


class TaskFailure(ReproError):
    """Raised inside the engine when a task attempt fails.

    Attributes mirror what Hi-WAY reports for a failed container: the task,
    the node it ran on, and a human-readable diagnostic.
    """

    def __init__(self, message: str, task_id: object = None, node: str | None = None):
        super().__init__(message)
        self.task_id = task_id
        self.node = node


class ToolNotInstalled(TaskFailure):
    """A task was placed on a node that lacks one of its executables."""


class OutOfMemory(TaskFailure):
    """A task exceeded the memory of the container it ran in."""


class RecipeError(ReproError):
    """Raised when a Chef-style recipe cannot be applied."""
