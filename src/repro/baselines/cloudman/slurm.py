"""A miniature Slurm: FIFO batch scheduling over fixed node slots.

Galaxy CloudMan (Sec. 4.2) dispatches Galaxy jobs through Slurm. The
paper configured it — like Hi-WAY — to run a single task per worker node
at a time, which is the default here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.cluster.node import Node
from repro.errors import SchedulingError
from repro.sim.engine import Environment, Event

__all__ = ["SlurmJob", "SlurmScheduler"]


@dataclass
class SlurmJob:
    """One queued batch job."""

    job_id: int
    body_factory: Callable[[Node], Generator]
    done: Event
    node: Optional[Node] = None
    #: Caller-supplied identity (e.g. the task id) for observability.
    tag: str = ""


class SlurmScheduler:
    """FIFO queue over homogeneous node slots."""

    def __init__(self, env: Environment, nodes: list[Node], slots_per_node: int = 1):
        if not nodes:
            raise SchedulingError("slurm needs at least one node")
        if slots_per_node < 1:
            raise SchedulingError("slots_per_node must be >= 1")
        self.env = env
        self.nodes = list(nodes)
        self.slots_per_node = slots_per_node
        self._free: dict[str, int] = {node.node_id: slots_per_node for node in nodes}
        self._queue: deque[SlurmJob] = deque()
        self._next_id = 1
        self.jobs_completed = 0
        #: Optional observer fired at each placement with
        #: ``(job, node, free_slots_before_assignment)``.
        self.on_assign: Optional[
            Callable[[SlurmJob, Node, dict], None]
        ] = None

    def submit(
        self, body_factory: Callable[[Node], Generator], tag: str = ""
    ) -> Event:
        """Queue a job; the returned event fires with (job, value) on exit.

        ``body_factory`` receives the node the job landed on and returns
        the simulation generator to run there.
        """
        job = SlurmJob(self._next_id, body_factory, self.env.event(), tag=tag)
        self._next_id += 1
        self._queue.append(job)
        self._try_dispatch()
        return job.done

    def _try_dispatch(self) -> None:
        while self._queue:
            node = self._first_free_node()
            if node is None:
                return
            job = self._queue.popleft()
            job.node = node
            if self.on_assign is not None:
                self.on_assign(job, node, dict(self._free))
            self._free[node.node_id] -= 1
            self.env.process(self._run(job))

    def _first_free_node(self) -> Optional[Node]:
        for node in self.nodes:
            if self._free[node.node_id] > 0:
                return node
        return None

    def _run(self, job: SlurmJob):
        try:
            value = yield self.env.process(job.body_factory(job.node))
        except BaseException as error:
            self._free[job.node.node_id] += 1
            self.jobs_completed += 1
            job.done.succeed((job, error))
            self._try_dispatch()
            return
        self._free[job.node.node_id] += 1
        self.jobs_completed += 1
        job.done.succeed((job, value))
        self._try_dispatch()

    @property
    def queued(self) -> int:
        """Jobs waiting for a slot."""
        return len(self._queue)
