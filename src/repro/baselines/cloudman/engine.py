"""Galaxy CloudMan baseline (Sec. 4.2).

CloudMan turns Galaxy into a small cluster (at most 20 nodes — the paper
calls out this hard limit) scheduled by Slurm. The performance-relevant
difference from Hi-WAY is storage: CloudMan keeps *all* data — inputs,
outputs, and the intermediate files tools scribble while running — on a
persistent EBS volume that is network-attached and shared among all
compute nodes, while Hi-WAY uses the workers' transient local SSDs via
HDFS. Every byte a CloudMan task touches therefore crosses the node's
link, the switch backbone, and the volume's aggregate throughput limit.

Execution runs through the shared
:class:`~repro.core.engine.ExecutionCore` with the
:class:`SlurmQueueBackend` (CloudMan's master-queue path): readiness is
EBS-volume existence, there are no retries, and a task failure aborts
the whole run immediately (``fail_mode="abort"``), as Galaxy does.
"""

from __future__ import annotations

import itertools

from repro.baselines.cloudman.slurm import SlurmJob, SlurmScheduler
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.core.engine import (
    CloudManResult,
    ExecutionBackend,
    ExecutionCore,
    ReadySetTracker,
    RetryPolicy,
    TaskAttempt,
)
from repro.core.execution import TaskResult
from repro.errors import ToolNotInstalled, WorkflowError
from repro.hdfs.filesystem import FileTransferReport
from repro.obs.events import FileStaged, SchedulingDecision
from repro.tools.profile import ToolRegistry
from repro.workflow.model import WorkflowGraph

__all__ = ["EbsVolume", "CloudManResult", "SlurmQueueBackend", "GalaxyCloudMan"]

#: CloudMan's automated setup only supports clusters up to this size.
CLOUDMAN_MAX_NODES = 20


class EbsVolume:
    """The shared network volume holding every CloudMan file."""

    def __init__(self, cluster: Cluster):
        self._cluster = cluster
        self._files: dict[str, float] = {}

    def register(self, path: str, size_mb: float) -> None:
        """Place a pre-existing input on the volume."""
        self._files[path] = float(size_mb)

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> float:
        try:
            return self._files[path]
        except KeyError:
            raise WorkflowError(f"not on the EBS volume: {path!r}") from None

    def read(self, path: str, node_id: str):
        """Event: stream ``path`` from the volume to ``node_id``."""
        return self._cluster.ebs_io(node_id, self.size_of(path), label=f"ebs-r:{path}")

    def write(self, path: str, size_mb: float, node_id: str):
        """Event: stream ``size_mb`` from ``node_id`` onto the volume."""
        self._files[path] = float(size_mb)
        return self._cluster.ebs_io(node_id, size_mb, label=f"ebs-w:{path}")

    def scratch_io(self, size_mb: float, node_id: str):
        """Event: intermediate-file traffic, also through the volume."""
        return self._cluster.ebs_io(node_id, size_mb, label=f"ebs-s:{node_id}")


class SlurmQueueBackend(ExecutionBackend):
    """ExecutionBackend: CloudMan's master-queue path through Slurm."""

    engine = "cloudman"

    def __init__(self, cloudman: "GalaxyCloudMan"):
        self.cloudman = cloudman

    def submit(self, attempt: TaskAttempt) -> None:
        cloudman = self.cloudman
        done = cloudman.slurm.submit(
            lambda node, attempt=attempt: cloudman._job_body(attempt, node),
            tag=attempt.task.task_id,
        )
        cloudman.env.process(self._watch(attempt, done))

    def live_nodes(self) -> set[str]:
        return {
            node.node_id
            for node in self.cloudman.cluster.workers
            if node.alive
        }

    def _watch(self, attempt: TaskAttempt, done):
        """Relay one Slurm job outcome back into the execution core."""
        job, value = yield done
        node_id = job.node.node_id if job.node is not None else ""
        if isinstance(value, BaseException):
            self.core.attempt_finished(
                attempt, node_id, success=False, error=value
            )
        else:
            # Same attempt vocabulary as the other engines: the recorded
            # makespan and output sizes feed the critical-path analyzer
            # and the runtime histograms.
            self.core.attempt_finished(
                attempt,
                node_id,
                success=True,
                makespan_seconds=value.makespan_seconds,
                output_sizes=value.output_sizes,
                value=value,
            )


class GalaxyCloudMan:
    """Executes Galaxy workflows on Slurm with EBS-backed storage."""

    def __init__(
        self,
        cluster: Cluster,
        tools: ToolRegistry,
        slots_per_node: int = 1,
        use_transient_storage: bool = False,
    ):
        if cluster.spec.worker_count > CLOUDMAN_MAX_NODES:
            raise WorkflowError(
                f"Galaxy CloudMan only supports clusters of up to "
                f"{CLOUDMAN_MAX_NODES} nodes (got {cluster.spec.worker_count})"
            )
        self.env = cluster.env
        self.cluster = cluster
        self.tools = tools
        self.volume = EbsVolume(cluster)
        self.slurm = SlurmScheduler(self.env, cluster.workers, slots_per_node)
        self.slurm.on_assign = self._on_slurm_assign
        #: A later CloudMan update added transient (local-disk) storage;
        #: off by default, as EBS "continues to be the default option".
        self.use_transient_storage = use_transient_storage
        self._core: ExecutionCore | None = None
        self._workflow_ids = itertools.count(1)

    def stage_inputs(self, files: dict[str, float]) -> None:
        """Place input files onto the volume (no simulated time)."""
        for path, size_mb in files.items():
            self.volume.register(path, size_mb)

    # -- execution --------------------------------------------------------------

    def run(self, graph: WorkflowGraph) -> CloudManResult:
        """Execute ``graph`` and drive the simulation to completion."""
        process = self.env.process(self.execute(graph))
        self.env.run(until=process)
        return process.value

    def execute(self, graph: WorkflowGraph):
        """Generator process executing ``graph`` on Slurm."""
        graph.validate()
        started = self.env.now
        core = ExecutionCore(
            self.env,
            SlurmQueueBackend(self),
            bus=self.cluster.bus,
            tracker=ReadySetTracker(storage_exists=self.volume.exists),
            retry=RetryPolicy(max_retries=0, exclude_failed_nodes=False),
            name=graph.name,
            fail_mode="abort",  # Galaxy aborts the run on the first failure
            on_success=self._on_attempt_success,
            result_cls=CloudManResult,
        )
        self._core = core
        core.begin(f"cloudman-{next(self._workflow_ids):04d}")
        for path in graph.input_files():
            if not self.volume.exists(path):
                return core.finalize(
                    started, error=f"missing input file {path!r}"
                )
        if not graph.tasks:
            return core.finalize(started)
        core.register(graph.topological_order())
        core.dispatch_ready()
        if core.deadlocked():
            return core.finalize(
                started, error="workflow stalled: no runnable tasks"
            )
        yield core.done
        return core.finalize(started)

    def _job_body(self, attempt: TaskAttempt, node: Node):
        """One Galaxy job: EBS stage-in, tool run, EBS stage-out.

        Returns a :class:`~repro.core.execution.TaskResult` so the
        backend reports the same attempt vocabulary (makespan, output
        sizes, per-file transfer reports) as the container engines.
        Every EBS byte crosses the network, so transfers count as
        remote; parallel stage-in/out files share one timed window.
        """
        task = attempt.task
        started = self.env.now
        self._core.attempt_running(attempt, node.node_id)
        profile = self.tools.get(task.tool)
        if not node.has_software(task.tool):
            raise ToolNotInstalled(
                f"{task.tool!r} missing on {node.node_id}",
                task_id=task.task_id,
                node=node.node_id,
            )
        reads = [self.volume.read(path, node.node_id) for path in task.inputs]
        if reads:
            yield self.env.all_of(reads)
        in_seconds = self.env.now - started
        input_reports = [
            FileTransferReport(
                path=path,
                node_id=node.node_id,
                size_mb=self.volume.size_of(path),
                local_mb=0.0,
                remote_mb=self.volume.size_of(path),
                seconds=in_seconds,
                direction="in",
            )
            for path in task.inputs
        ]
        input_mb = sum(self.volume.size_of(path) for path in task.inputs)
        threads = min(profile.max_threads, node.spec.cores)
        yield node.compute(profile.work_for(input_mb), threads=threads)
        # Scratch I/O is sequential with compute (see
        # repro.core.execution); on CloudMan it crosses the network to
        # the shared volume unless transient storage is enabled.
        scratch = profile.scratch_mb(input_mb)
        if scratch > 0:
            if self.use_transient_storage:
                yield node.disk_io(scratch)
            else:
                yield self.volume.scratch_io(scratch, node.node_id)
        sizes = profile.output_sizes(input_mb, len(task.outputs))
        out_started = self.env.now
        writes = []
        written: list[tuple[str, float]] = []
        for index, path in enumerate(task.outputs):
            hinted = task.hinted_size(path)
            size = sizes[index] if hinted is None else hinted
            writes.append(self.volume.write(path, size, node.node_id))
            written.append((path, size))
        if writes:
            yield self.env.all_of(writes)
        out_seconds = self.env.now - out_started
        return TaskResult(
            task_id=task.task_id,
            node_id=node.node_id,
            started_at=started,
            finished_at=self.env.now,
            input_reports=input_reports,
            output_reports=[
                FileTransferReport(
                    path=path,
                    node_id=node.node_id,
                    size_mb=size,
                    local_mb=0.0,
                    remote_mb=size,
                    seconds=out_seconds,
                    direction="out",
                )
                for path, size in written
            ],
            output_sizes=dict(written),
        )

    # -- observability hooks ----------------------------------------------------

    def _on_slurm_assign(self, job: SlurmJob, node: Node, free: dict) -> None:
        """Publish Slurm's placement in the shared decision vocabulary."""
        bus = self.cluster.bus
        if not bus.wants(SchedulingDecision):
            return
        workflow_id = (
            self._core.workflow_id if self._core is not None else None
        )
        bus.emit(SchedulingDecision(
            workflow_id=workflow_id or "",
            policy="slurm-fifo",
            kind="queue-bind",
            task_id=job.tag,
            node_id=node.node_id,
            candidate_kind="node",
            candidates=tuple(
                (candidate.node_id, float(free[candidate.node_id]))
                for candidate in self.slurm.nodes
            ),
            score_name="free slots",
            better="max",
            reason="FIFO head of the Slurm queue lands on the first "
            "node with a free slot in scan order",
        ))

    def _on_attempt_success(self, attempt: TaskAttempt, result) -> None:
        bus = self.cluster.bus
        if result is None or not bus.wants(FileStaged):
            return
        workflow_id = (
            self._core.workflow_id if self._core is not None else None
        )
        for report in result.input_reports + result.output_reports:
            bus.emit(FileStaged(
                workflow_id=workflow_id or "",
                task=attempt.task,
                report=report,
            ))
