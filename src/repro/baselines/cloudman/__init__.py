"""Galaxy CloudMan baseline: Slurm scheduling over shared EBS storage."""

from repro.baselines.cloudman.engine import (
    CLOUDMAN_MAX_NODES,
    CloudManResult,
    EbsVolume,
    GalaxyCloudMan,
)
from repro.baselines.cloudman.slurm import SlurmJob, SlurmScheduler

__all__ = [
    "GalaxyCloudMan",
    "CloudManResult",
    "EbsVolume",
    "SlurmScheduler",
    "SlurmJob",
    "CLOUDMAN_MAX_NODES",
]
