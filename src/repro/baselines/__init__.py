"""Baseline systems the paper compares against: Tez and Galaxy CloudMan."""

from repro.baselines.cloudman import CloudManResult, GalaxyCloudMan
from repro.baselines.tez import TezApplicationMaster, TezResult, from_workflow_graph

__all__ = [
    "TezApplicationMaster",
    "TezResult",
    "from_workflow_graph",
    "GalaxyCloudMan",
    "CloudManResult",
]
