"""Tez-style DAG model: vertices and typed edges.

Apache Tez (Sec. 2.2) executes DAGs whose nodes are *vertices* — groups
of parallel tasks running the same processor — connected by edges that
are either one-to-one (task i feeds task i) or scatter-gather (every
producer task feeds every consumer task, a stage barrier).

``from_workflow_graph`` converts a Hi-WAY workflow graph into this
shape, which is how the paper's authors had to re-implement the variant
calling workflow "with a lot of code in Tez" — here the wrapping is
automated, but the runtime semantics (stage barriers on scatter-gather
edges, no data-aware placement) are Tez's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkflowError
from repro.workflow.model import TaskSpec, WorkflowGraph

__all__ = ["Edge", "Vertex", "TezDag", "from_workflow_graph"]

ONE_TO_ONE = "one-to-one"
SCATTER_GATHER = "scatter-gather"


@dataclass
class Vertex:
    """A group of parallel tasks sharing one processor (tool)."""

    name: str
    tasks: list[TaskSpec] = field(default_factory=list)

    @property
    def parallelism(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class Edge:
    """A typed connection between two vertices."""

    src: str
    dst: str
    kind: str  # ONE_TO_ONE or SCATTER_GATHER


@dataclass
class TezDag:
    """A complete Tez DAG."""

    name: str
    vertices: dict[str, Vertex] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)

    def add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.name in self.vertices:
            raise WorkflowError(f"duplicate vertex {vertex.name!r}")
        self.vertices[vertex.name] = vertex
        return vertex

    def connect(self, src: str, dst: str, kind: str = SCATTER_GATHER) -> Edge:
        if src not in self.vertices or dst not in self.vertices:
            raise WorkflowError(f"edge {src!r}->{dst!r} references unknown vertex")
        if kind not in (ONE_TO_ONE, SCATTER_GATHER):
            raise WorkflowError(f"unknown edge kind {kind!r}")
        edge = Edge(src, dst, kind)
        self.edges.append(edge)
        return edge

    def upstream_of(self, vertex_name: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.dst == vertex_name]

    def input_files(self) -> list[str]:
        produced = {
            path
            for vertex in self.vertices.values()
            for task in vertex.tasks
            for path in task.outputs
        }
        consumed = {
            path
            for vertex in self.vertices.values()
            for task in vertex.tasks
            for path in task.inputs
        }
        return sorted(consumed - produced)


def _depths(graph: WorkflowGraph) -> dict[str, int]:
    """Longest-path depth of every task (0 = no produced inputs)."""
    depth: dict[str, int] = {}
    for task in graph.topological_order():
        parents = graph.dependencies_of(task)
        depth[task.task_id] = 1 + max(
            (depth[p] for p in parents), default=-1
        )
    return depth


def from_workflow_graph(graph: WorkflowGraph) -> TezDag:
    """Wrap a workflow graph into vertices grouped by (depth, tool)."""
    graph.validate()
    depth = _depths(graph)
    dag = TezDag(name=graph.name)
    membership: dict[str, str] = {}
    groups: dict[tuple[int, str], list[TaskSpec]] = {}
    for task in graph.topological_order():
        groups.setdefault((depth[task.task_id], task.tool), []).append(task)
    for (level, tool), tasks in sorted(groups.items()):
        vertex = dag.add_vertex(Vertex(name=f"v{level}-{tool}", tasks=tasks))
        for task in tasks:
            membership[task.task_id] = vertex.name

    # Edge type: one-to-one when the producing and consuming vertices
    # pair their tasks bijectively through files, else scatter-gather.
    pairings: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for task in graph.tasks.values():
        consumer_vertex = membership[task.task_id]
        for parent_id in graph.dependencies_of(task):
            producer_vertex = membership[parent_id]
            pairings.setdefault((producer_vertex, consumer_vertex), set()).add(
                (parent_id, task.task_id)
            )
    for (src, dst), pairs in sorted(pairings.items()):
        producers = {pair[0] for pair in pairs}
        consumers = {pair[1] for pair in pairs}
        bijective = (
            len(pairs) == len(producers) == len(consumers)
            and len(dag.vertices[src].tasks) == len(dag.vertices[dst].tasks)
        )
        dag.connect(src, dst, ONE_TO_ONE if bijective else SCATTER_GATHER)
    return dag
