"""A miniature Tez application master (Sec. 2.2, evaluated in Sec. 4.1).

Differences from the Hi-WAY AM that matter for the Figure 4 comparison:

* **no data-aware placement** — tasks are bound to whatever container
  YARN hands over next, so input blocks are fetched across the network
  whenever the round-robin allocation lands elsewhere;
* **stage barriers** — a scatter-gather edge forces the whole upstream
  vertex to finish before any downstream task starts;
* **no provenance / adaptive scheduling** — Tez collects no cross-run
  statistics the way Hi-WAY's Provenance Manager does.

What is shared — deliberately — is the container lifecycle (HDFS
stage-in, tool invocation, HDFS stage-out), the YARN substrate, and the
task-attempt FSM of :class:`~repro.core.engine.ExecutionCore`, so the
comparison isolates scheduling behaviour just like the paper's
experiment did. The Tez-specific part is the
:class:`TezVertexBackend`: a strict-FIFO container pool with Tez's
signature container reuse, gated by vertex barriers.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.tez.dag import SCATTER_GATHER, TezDag, from_workflow_graph
from repro.cluster.cluster import Cluster
from repro.core.engine import (
    ExecutionBackend,
    ExecutionCore,
    ReadySetTracker,
    RetryPolicy,
    TaskAttempt,
    TezResult,
)
from repro.core.execution import run_task_in_container
from repro.hdfs.filesystem import HdfsClient
from repro.obs.events import FileStaged, SchedulingDecision
from repro.tools.profile import ToolRegistry
from repro.workflow.model import TaskSpec, WorkflowGraph
from repro.yarn.records import ContainerResource, ContainerState
from repro.yarn.resourcemanager import ResourceManager

__all__ = ["TezResult", "TezVertexBackend", "TezApplicationMaster"]


class TezVertexBackend(ExecutionBackend):
    """ExecutionBackend: strict-FIFO container pool with reuse.

    Submitted attempts join one locality-blind queue; each outstanding
    container request spawns a chain that serves queue entries off
    whatever node YARN allocated, reusing the warm container while the
    queue is non-empty (Tez's signature optimisation).
    """

    engine = "tez"

    def __init__(self, am: "TezApplicationMaster"):
        self.am = am
        self.queue: list[TaskAttempt] = []
        #: Chains currently holding or awaiting a container.
        self.chains = 0

    # -- protocol ----------------------------------------------------------------

    def submit(self, attempt: TaskAttempt) -> None:
        am = self.am
        self.queue.append(attempt)
        request = am.rm.request_container(am._app, am.container_resource)
        self.chains += 1
        am.env.process(self._chain(request))

    def live_nodes(self) -> set[str]:
        return {
            node.node_id for node in self.am.cluster.workers if node.alive
        }

    def quiescent(self) -> bool:
        return self.chains == 0 and not self.queue

    # -- container lifecycle -----------------------------------------------------

    def _chain(self, request):
        am = self.am
        core = self.core
        container = yield request
        while True:
            if core.workflow_failed or not self.queue:
                am.rm.release_container(container)
                self.chains -= 1
                core.check_done()
                return
            bus = am.cluster.bus
            if bus.wants(SchedulingDecision):
                # Same decision vocabulary as the Hi-WAY schedulers so
                # `explain` and the decision audit work on this engine:
                # strict FIFO means the score is the queue position.
                bus.emit(SchedulingDecision(
                    workflow_id=core.workflow_id or "",
                    policy="tez-fifo",
                    kind="queue-bind",
                    task_id=self.queue[0].task.task_id,
                    node_id=container.node_id,
                    candidate_kind="task",
                    candidates=tuple(
                        (queued.task.task_id, float(position))
                        for position, queued in enumerate(self.queue)
                    ),
                    score_name="queue position",
                    better="min",
                    reason="strict FIFO: head of the vertex queue binds "
                    "to the next allocated container",
                ))
            attempt = self.queue.pop(0)  # strict FIFO, no locality
            core.attempt_running(attempt, container.node_id)
            watcher = am.rm.node_managers[container.node_id].launch(
                container,
                run_task_in_container(
                    am.env, am.cluster, am.hdfs, am.tools,
                    attempt.task, container,
                ),
            )
            outcome = yield watcher
            if outcome.success:
                result = outcome.value
                core.attempt_finished(
                    attempt,
                    container.node_id,
                    success=True,
                    makespan_seconds=result.makespan_seconds,
                    output_sizes=result.output_sizes,
                    value=result,
                )
            else:
                core.attempt_finished(
                    attempt, container.node_id, success=False,
                    error=outcome.error,
                )
            reusable = (
                am.reuse_containers
                and container.state is ContainerState.COMPLETED
                and am.cluster.node(container.node_id).alive
                and not core.workflow_failed
                and bool(self.queue)
            )
            if reusable:
                # Tez's signature optimisation: the warm container takes
                # the next queued task instead of going back to YARN.
                # Surplus outstanding requests simply find an empty queue
                # on allocation and release immediately.
                am.containers_reused += 1
                continue
            am.rm.release_container(container)
            self.chains -= 1
            core.check_done()
            return


class TezApplicationMaster:
    """Runs one Tez DAG on the simulated YARN cluster."""

    def __init__(
        self,
        cluster: Cluster,
        hdfs: HdfsClient,
        rm: ResourceManager,
        tools: ToolRegistry,
        dag: TezDag | WorkflowGraph,
        container_resource: Optional[ContainerResource] = None,
        max_retries: int = 2,
        reuse_containers: bool = True,
    ):
        self.env = cluster.env
        self.cluster = cluster
        self.hdfs = hdfs
        self.rm = rm
        self.tools = tools
        self.dag = dag if isinstance(dag, TezDag) else from_workflow_graph(dag)
        self.container_resource = container_resource or ContainerResource()
        self.max_retries = max_retries
        #: Tez's signature container reuse: a finished task's container
        #: picks up the next queued task instead of being released.
        self.reuse_containers = reuse_containers
        self.containers_reused = 0

        self._vertex_of: dict[str, str] = {}
        self._remaining_in_vertex: dict[str, int] = {}
        for vertex in self.dag.vertices.values():
            self._remaining_in_vertex[vertex.name] = len(vertex.tasks)
            for task in vertex.tasks:
                self._vertex_of[task.task_id] = vertex.name
        #: Vertices gated by scatter-gather edges from these upstreams.
        self._barriers: dict[str, set[str]] = {
            name: {
                edge.src
                for edge in self.dag.upstream_of(name)
                if edge.kind == SCATTER_GATHER
            }
            for name in self.dag.vertices
        }
        self.backend = TezVertexBackend(self)
        self.core = ExecutionCore(
            self.env,
            self.backend,
            bus=cluster.bus,
            tracker=ReadySetTracker(
                storage_exists=hdfs.exists, gate=self._task_unblocked
            ),
            retry=RetryPolicy(
                max_retries=max_retries, exclude_failed_nodes=False
            ),
            name=self.dag.name,
            fail_mode="drain",
            on_success=self._on_attempt_success,
            result_cls=TezResult,
        )
        self._app = None

    # -- readiness -------------------------------------------------------------

    def _vertex_unblocked(self, vertex_name: str) -> bool:
        return all(
            self._remaining_in_vertex[upstream] == 0
            for upstream in self._barriers[vertex_name]
        )

    def _task_unblocked(self, task: TaskSpec) -> bool:
        return self._vertex_unblocked(self._vertex_of[task.task_id])

    # -- main process ---------------------------------------------------------------

    def run(self):
        """Generator process executing the DAG to completion."""
        started = self.env.now
        self._app = self.rm.register_application(f"tez:{self.dag.name}")
        self.core.begin(self._app.app_id)
        for path in self.dag.input_files():
            if not self.hdfs.exists(path):
                return self._finish(started, error=f"missing input file {path!r}")
            self.core.add_available([path])
        total = sum(v.parallelism for v in self.dag.vertices.values())
        if total == 0:
            return self._finish(started)
        self.core.register(
            task
            for vertex in self.dag.vertices.values()
            for task in vertex.tasks
        )
        self.core.dispatch_ready()
        if self.core.deadlocked():
            return self._finish(started, error="DAG has no runnable tasks")
        yield self.core.done
        return self._finish(started)

    def _finish(self, started: float, error: Optional[str] = None) -> TezResult:
        if error is not None:
            self.core.fail(error)
        if self._app is not None:
            self.rm.unregister_application(self._app)
        return self.core.finalize(started)

    # -- execution-core hooks -------------------------------------------------------

    def _on_attempt_success(self, attempt: TaskAttempt, result) -> None:
        # Un-gate the downstream vertex before the core re-scans the
        # ready set: scatter-gather barriers lift exactly when the last
        # task of the upstream vertex completes.
        vertex_name = self._vertex_of[attempt.task.task_id]
        self._remaining_in_vertex[vertex_name] -= 1
        bus = self.cluster.bus
        if result is not None and bus.wants(FileStaged):
            for report in result.input_reports + result.output_reports:
                bus.emit(FileStaged(
                    workflow_id=self.core.workflow_id or "",
                    task=attempt.task,
                    report=report,
                ))
