"""A miniature Tez application master (Sec. 2.2, evaluated in Sec. 4.1).

Differences from the Hi-WAY AM that matter for the Figure 4 comparison:

* **no data-aware placement** — tasks are bound to whatever container
  YARN hands over next, so input blocks are fetched across the network
  whenever the round-robin allocation lands elsewhere;
* **stage barriers** — a scatter-gather edge forces the whole upstream
  vertex to finish before any downstream task starts;
* **no provenance / adaptive scheduling** — Tez collects no cross-run
  statistics the way Hi-WAY's Provenance Manager does.

What is shared — deliberately — is the container lifecycle (HDFS
stage-in, tool invocation, HDFS stage-out) and the YARN substrate, so
the comparison isolates scheduling behaviour just like the paper's
experiment did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.tez.dag import SCATTER_GATHER, TezDag, from_workflow_graph
from repro.cluster.cluster import Cluster
from repro.core.execution import run_task_in_container
from repro.hdfs.filesystem import HdfsClient
from repro.tools.profile import ToolRegistry
from repro.workflow.model import TaskSpec, WorkflowGraph
from repro.yarn.records import ContainerResource, ContainerState
from repro.yarn.resourcemanager import ResourceManager

__all__ = ["TezResult", "TezApplicationMaster"]


@dataclass
class TezResult:
    """Terminal report of one Tez DAG execution."""

    dag_name: str
    success: bool
    started_at: float
    finished_at: float
    tasks_completed: int
    task_failures: int
    diagnostics: list[str] = field(default_factory=list)

    @property
    def runtime_seconds(self) -> float:
        return self.finished_at - self.started_at


class TezApplicationMaster:
    """Runs one Tez DAG on the simulated YARN cluster."""

    def __init__(
        self,
        cluster: Cluster,
        hdfs: HdfsClient,
        rm: ResourceManager,
        tools: ToolRegistry,
        dag: TezDag | WorkflowGraph,
        container_resource: Optional[ContainerResource] = None,
        max_retries: int = 2,
        reuse_containers: bool = True,
    ):
        self.env = cluster.env
        self.cluster = cluster
        self.hdfs = hdfs
        self.rm = rm
        self.tools = tools
        self.dag = dag if isinstance(dag, TezDag) else from_workflow_graph(dag)
        self.container_resource = container_resource or ContainerResource()
        self.max_retries = max_retries
        #: Tez's signature container reuse: a finished task's container
        #: picks up the next queued task instead of being released.
        self.reuse_containers = reuse_containers
        self.containers_reused = 0

        self._vertex_of: dict[str, str] = {}
        self._remaining_in_vertex: dict[str, int] = {}
        for vertex in self.dag.vertices.values():
            self._remaining_in_vertex[vertex.name] = len(vertex.tasks)
            for task in vertex.tasks:
                self._vertex_of[task.task_id] = vertex.name
        #: Vertices gated by scatter-gather edges from these upstreams.
        self._barriers: dict[str, set[str]] = {
            name: {
                edge.src
                for edge in self.dag.upstream_of(name)
                if edge.kind == SCATTER_GATHER
            }
            for name in self.dag.vertices
        }
        self._available: set[str] = set()
        self._attempts: dict[str, int] = {}
        self._dispatched: set[str] = set()
        self._completed_tasks: set[str] = set()
        self._queue: list[TaskSpec] = []
        self._running = 0
        self._failures = 0
        self._failed = False
        self._diagnostics: list[str] = []
        self._done = self.env.event()
        self._app = None

    # -- readiness -------------------------------------------------------------

    def _vertex_unblocked(self, vertex_name: str) -> bool:
        return all(
            self._remaining_in_vertex[upstream] == 0
            for upstream in self._barriers[vertex_name]
        )

    def _task_ready(self, task: TaskSpec) -> bool:
        if not self._vertex_unblocked(self._vertex_of[task.task_id]):
            return False
        return all(
            path in self._available or self.hdfs.exists(path)
            for path in task.inputs
        )

    # -- main process ---------------------------------------------------------------

    def run(self):
        """Generator process executing the DAG to completion."""
        started = self.env.now
        self._app = self.rm.register_application(f"tez:{self.dag.name}")
        for path in self.dag.input_files():
            if not self.hdfs.exists(path):
                return self._finish(started, error=f"missing input file {path!r}")
            self._available.add(path)
        total = sum(v.parallelism for v in self.dag.vertices.values())
        if total == 0:
            return self._finish(started)
        self._dispatch_ready()
        if self._running == 0:
            return self._finish(started, error="DAG has no runnable tasks")
        yield self._done
        return self._finish(started)

    def _finish(self, started: float, error: Optional[str] = None) -> TezResult:
        if error is not None:
            self._diagnostics.append(error)
            self._failed = True
        if self._app is not None:
            self.rm.unregister_application(self._app)
        return TezResult(
            dag_name=self.dag.name,
            success=not self._failed,
            started_at=started,
            finished_at=self.env.now,
            tasks_completed=len(self._completed_tasks),
            task_failures=self._failures,
            diagnostics=list(self._diagnostics),
        )

    # -- dispatch --------------------------------------------------------------------

    def _dispatch_ready(self) -> None:
        for vertex in self.dag.vertices.values():
            for task in vertex.tasks:
                if task.task_id in self._dispatched:
                    continue
                if self._task_ready(task):
                    self._dispatched.add(task.task_id)
                    self._submit(task)

    def _submit(self, task: TaskSpec) -> None:
        self._queue.append(task)
        request = self.rm.request_container(self._app, self.container_resource)
        self._running += 1
        self.env.process(self._chain(request))

    def _chain(self, request):
        container = yield request
        while True:
            if self._failed or not self._queue:
                self.rm.release_container(container)
                self._running -= 1
                self._check_done()
                return
            task = self._queue.pop(0)  # strict FIFO, no locality
            self._attempts[task.task_id] = self._attempts.get(task.task_id, 0) + 1
            watcher = self.rm.node_managers[container.node_id].launch(
                container,
                run_task_in_container(
                    self.env, self.cluster, self.hdfs, self.tools, task, container
                ),
            )
            outcome = yield watcher
            if outcome.success:
                result = outcome.value
                self._completed_tasks.add(task.task_id)
                vertex_name = self._vertex_of[task.task_id]
                self._remaining_in_vertex[vertex_name] -= 1
                self._available.update(result.output_sizes)
                self._dispatch_ready()
            else:
                self._failures += 1
                if self._attempts[task.task_id] <= self.max_retries:
                    self._submit(task)
                else:
                    self._diagnostics.append(
                        f"task {task.task_id} failed: {outcome.error!r}"
                    )
                    self._failed = True
            reusable = (
                self.reuse_containers
                and container.state is ContainerState.COMPLETED
                and self.cluster.node(container.node_id).alive
                and not self._failed
                and bool(self._queue)
            )
            if reusable:
                # Tez's signature optimisation: the warm container takes
                # the next queued task instead of going back to YARN.
                # Surplus outstanding requests simply find an empty queue
                # on allocation and release immediately.
                self.containers_reused += 1
                continue
            self.rm.release_container(container)
            self._running -= 1
            self._check_done()
            return

    def _check_done(self) -> None:
        if self._done.triggered:
            return
        if self._failed and self._running == 0:
            self._done.succeed()
            return
        total = sum(v.parallelism for v in self.dag.vertices.values())
        if len(self._completed_tasks) == total and self._running == 0:
            self._done.succeed()
