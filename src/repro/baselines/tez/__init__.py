"""Miniature Apache Tez: DAG-of-vertices execution on YARN."""

from repro.baselines.tez.am import TezApplicationMaster, TezResult
from repro.baselines.tez.dag import (
    Edge,
    ONE_TO_ONE,
    SCATTER_GATHER,
    TezDag,
    Vertex,
    from_workflow_graph,
)

__all__ = [
    "TezApplicationMaster",
    "TezResult",
    "TezDag",
    "Vertex",
    "Edge",
    "ONE_TO_ONE",
    "SCATTER_GATHER",
    "from_workflow_graph",
]
