"""Admission control: bounding concurrently registered applications.

A workflow-as-a-service RM cannot let an unbounded number of AMs
register — each holds heartbeat state and competes for the allocator.
The :class:`AdmissionController` caps concurrent registrations; beyond
the cap a submission is either *queued* (admitted as running
applications unregister — the default, modelling YARN's accepted-apps
queue) or *rejected* outright.

How the waiting queue drains is itself a policy (``drain``):

* ``"fifo"`` (the default) admits strictly in queue order — simple and
  what YARN's accepted-apps queue does, but a tenant that keeps
  re-submitting can occupy every freed slot if its retries happen to
  sit at the head each time a slot opens;
* ``"tenant-fair"`` admits the queued submission whose tenant has been
  admitted *least often* so far (ties break in queue order), a
  round-robin over tenants that keeps a retry-happy tenant from
  starving the others.

The controller is pure decision logic; the RM owns the actual waiting
queue and resolves queued tickets when slots free up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event
    from repro.yarn.records import ApplicationHandle

__all__ = ["AdmissionController", "AdmissionTicket"]


@dataclass
class AdmissionTicket:
    """Outcome of one application submission.

    Exactly one of three shapes:

    * admitted now — ``handle`` is set, ``event`` is None;
    * queued — ``event`` is set and will fire with the
      :class:`~repro.yarn.records.ApplicationHandle` once admitted;
    * rejected — ``rejected`` is True and ``reason`` says why.
    """

    name: str
    tenant: Optional[str] = None
    handle: Optional["ApplicationHandle"] = None
    event: Optional["Event"] = None
    rejected: bool = False
    reason: str = ""

    @property
    def admitted(self) -> bool:
        """Whether the application is registered right now."""
        return self.handle is not None


class AdmissionController:
    """Caps concurrently registered applications on one RM."""

    #: What happens to submissions beyond the cap.
    OVERFLOW_MODES = ("queue", "reject")
    #: How the waiting queue drains when slots free up.
    DRAIN_MODES = ("fifo", "tenant-fair")

    def __init__(
        self,
        max_concurrent_apps: Optional[int] = None,
        overflow: str = "queue",
        drain: str = "fifo",
    ):
        if max_concurrent_apps is not None and max_concurrent_apps < 1:
            raise ValueError("max_concurrent_apps must be >= 1")
        if overflow not in self.OVERFLOW_MODES:
            raise ValueError(
                f"unknown overflow mode {overflow!r}; "
                f"choose one of {self.OVERFLOW_MODES}"
            )
        if drain not in self.DRAIN_MODES:
            raise ValueError(
                f"unknown drain mode {drain!r}; "
                f"choose one of {self.DRAIN_MODES}"
            )
        self.max_concurrent_apps = max_concurrent_apps
        self.overflow = overflow
        self.drain = drain
        #: tenant key -> times that tenant has been admitted, the state
        #: the ``tenant-fair`` drain ranks against.
        self._admitted_counts: dict[str, int] = {}

    def decide(self, active: int) -> str:
        """``"admit"``, ``"queue"`` or ``"reject"`` for one submission."""
        if self.max_concurrent_apps is None or active < self.max_concurrent_apps:
            return "admit"
        return "queue" if self.overflow == "queue" else "reject"

    def has_slot(self, active: int) -> bool:
        """Whether a queued application could be admitted right now."""
        return self.max_concurrent_apps is None or active < self.max_concurrent_apps

    @staticmethod
    def _tenant_key(name: str, tenant: Optional[str]) -> str:
        # Tenant-less submissions each become their own tenant at
        # registration time, so their name is the closest stable key.
        return tenant if tenant else name

    def record_admission(self, name: str, tenant: Optional[str]) -> None:
        """Note one admission (the RM calls this on every register)."""
        key = self._tenant_key(name, tenant)
        self._admitted_counts[key] = self._admitted_counts.get(key, 0) + 1

    def select_queued(
        self, entries: Sequence[tuple[str, Optional[str]]]
    ) -> int:
        """Index of the queued ``(name, tenant)`` to admit next.

        ``"fifo"`` always picks the head. ``"tenant-fair"`` picks the
        earliest entry of the tenant admitted least often so far, so a
        tenant that keeps re-submitting (e.g. retrying after a
        rejection) cannot occupy every freed slot while other tenants
        wait.
        """
        if self.drain == "fifo" or len(entries) <= 1:
            return 0
        return min(
            range(len(entries)),
            key=lambda index: (
                self._admitted_counts.get(
                    self._tenant_key(*entries[index]), 0
                ),
                index,
            ),
        )
