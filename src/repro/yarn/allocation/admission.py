"""Admission control: bounding concurrently registered applications.

A workflow-as-a-service RM cannot let an unbounded number of AMs
register — each holds heartbeat state and competes for the allocator.
The :class:`AdmissionController` caps concurrent registrations; beyond
the cap a submission is either *queued* (admitted FIFO as running
applications unregister — the default, modelling YARN's accepted-apps
queue) or *rejected* outright.

The controller is pure decision logic; the RM owns the actual waiting
queue and resolves queued tickets when slots free up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event
    from repro.yarn.records import ApplicationHandle

__all__ = ["AdmissionController", "AdmissionTicket"]


@dataclass
class AdmissionTicket:
    """Outcome of one application submission.

    Exactly one of three shapes:

    * admitted now — ``handle`` is set, ``event`` is None;
    * queued — ``event`` is set and will fire with the
      :class:`~repro.yarn.records.ApplicationHandle` once admitted;
    * rejected — ``rejected`` is True and ``reason`` says why.
    """

    name: str
    tenant: Optional[str] = None
    handle: Optional["ApplicationHandle"] = None
    event: Optional["Event"] = None
    rejected: bool = False
    reason: str = ""

    @property
    def admitted(self) -> bool:
        """Whether the application is registered right now."""
        return self.handle is not None


class AdmissionController:
    """Caps concurrently registered applications on one RM."""

    #: What happens to submissions beyond the cap.
    OVERFLOW_MODES = ("queue", "reject")

    def __init__(
        self,
        max_concurrent_apps: Optional[int] = None,
        overflow: str = "queue",
    ):
        if max_concurrent_apps is not None and max_concurrent_apps < 1:
            raise ValueError("max_concurrent_apps must be >= 1")
        if overflow not in self.OVERFLOW_MODES:
            raise ValueError(
                f"unknown overflow mode {overflow!r}; "
                f"choose one of {self.OVERFLOW_MODES}"
            )
        self.max_concurrent_apps = max_concurrent_apps
        self.overflow = overflow

    def decide(self, active: int) -> str:
        """``"admit"``, ``"queue"`` or ``"reject"`` for one submission."""
        if self.max_concurrent_apps is None or active < self.max_concurrent_apps:
            return "admit"
        return "queue" if self.overflow == "queue" else "reject"

    def has_slot(self, active: int) -> bool:
        """Whether a queued application could be admitted right now."""
        return self.max_concurrent_apps is None or active < self.max_concurrent_apps
