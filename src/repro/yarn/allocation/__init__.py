"""Pluggable cross-application allocation for the simulated RM.

YARN multiplexes many independent application masters onto one shared
cluster; *how* the ResourceManager orders their container requests is a
policy decision (FifoScheduler / FairScheduler / DominantResourceFairness
in real YARN). This package factors that decision out of the RM:

* :mod:`~repro.yarn.allocation.policy` — the :class:`AllocationPolicy`
  protocol plus the three built-in orderings (``fifo``, ``fair``,
  ``drf``);
* :mod:`~repro.yarn.allocation.queues` — per-tenant pending queues with
  weights and quota caps, replacing the RM's single pending deque;
* :mod:`~repro.yarn.allocation.admission` — the
  :class:`AdmissionController` bounding concurrently registered
  applications (queue or reject beyond the limit).

The RM keeps the mechanism (node choice, capacity bookkeeping, events);
everything here is pure ordering/limiting policy and owns no simulation
state beyond the queued requests themselves.
"""

from repro.yarn.allocation.admission import AdmissionController, AdmissionTicket
from repro.yarn.allocation.policy import (
    AllocationPolicy,
    ClusterShare,
    DrfPolicy,
    FairSharePolicy,
    FifoPolicy,
    POLICY_NAMES,
    make_policy,
)
from repro.yarn.allocation.queues import PendingPool, TenantQueue, TenantSpec

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "AllocationPolicy",
    "ClusterShare",
    "DrfPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "POLICY_NAMES",
    "PendingPool",
    "TenantQueue",
    "TenantSpec",
    "make_policy",
]
