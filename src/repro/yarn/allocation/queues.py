"""Per-tenant pending queues with weights, quotas and usage accounting.

The RM used to keep one global pending deque and re-sort it wholesale on
every capacity change. Here every *tenant* (a YARN queue: one or more
applications submitting under a shared identity) owns its own
arrival-ordered deque plus the usage counters the policies rank on.
A serve pass scans each queue through a cursor — requests the pass
could not place are kept aside in arrival order and spliced back at the
end — so ordering is maintained incrementally: the pass costs
O(requests visited x log tenants) instead of re-sorting every pending
request on every callback.

Quota caps (``max_containers`` / ``max_vcores``) bound what one tenant
may hold concurrently; a tenant at its cap simply sits out the rest of
the pass, exactly like a YARN queue at capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event
    from repro.yarn.records import ContainerRequest, ContainerResource

__all__ = ["TenantSpec", "TenantQueue", "PendingPool"]


@dataclass(frozen=True)
class TenantSpec:
    """Declarative per-tenant policy inputs: weight and quota caps."""

    #: Fair-share weight; a tenant of weight 2 tolerates holding twice
    #: as much as a weight-1 tenant before losing priority.
    weight: float = 1.0
    #: Hard cap on concurrently held containers (None = unbounded).
    max_containers: Optional[int] = None
    #: Hard cap on concurrently held vcores (None = unbounded).
    max_vcores: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_containers is not None and self.max_containers < 1:
            raise ValueError("max_containers must be >= 1")
        if self.max_vcores is not None and self.max_vcores < 1:
            raise ValueError("max_vcores must be >= 1")


class TenantQueue:
    """One tenant's pending requests plus its live-usage counters."""

    __slots__ = (
        "tenant",
        "spec",
        "containers_held",
        "vcores_held",
        "memory_mb_held",
        "_items",
        "_passed",
    )

    def __init__(self, tenant: str, spec: Optional[TenantSpec] = None):
        self.tenant = tenant
        self.spec = spec if spec is not None else TenantSpec()
        self.containers_held = 0
        self.vcores_held = 0
        self.memory_mb_held = 0.0
        self._items: deque[tuple["ContainerRequest", "Event"]] = deque()
        #: Requests visited but not placed during the current serve pass,
        #: in arrival order; spliced back in front at :meth:`end_scan`.
        self._passed: list[tuple["ContainerRequest", "Event"]] = []

    @property
    def weight(self) -> float:
        return self.spec.weight

    # -- intake / usage -----------------------------------------------------------

    def append(self, request: "ContainerRequest", event: "Event") -> None:
        self._items.append((request, event))

    def charge(self, resource: "ContainerResource") -> None:
        """Account one allocated container against this tenant."""
        self.containers_held += 1
        self.vcores_held += resource.vcores
        self.memory_mb_held += resource.memory_mb

    def credit(self, resource: "ContainerResource") -> None:
        """Return one released container's usage."""
        self.containers_held = max(0, self.containers_held - 1)
        self.vcores_held = max(0, self.vcores_held - resource.vcores)
        self.memory_mb_held = max(0.0, self.memory_mb_held - resource.memory_mb)

    def quota_blocks(self, resource: "ContainerResource") -> bool:
        """Whether granting ``resource`` would push the tenant past a cap."""
        spec = self.spec
        if (
            spec.max_containers is not None
            and self.containers_held + 1 > spec.max_containers
        ):
            return True
        return (
            spec.max_vcores is not None
            and self.vcores_held + resource.vcores > spec.max_vcores
        )

    # -- one serve pass -----------------------------------------------------------

    def current(self) -> Optional[tuple["ContainerRequest", "Event"]]:
        """The candidate at the scan cursor; drains cancelled requests."""
        items = self._items
        while items:
            entry = items[0]
            if entry[0].cancelled:
                items.popleft()
                continue
            return entry
        return None

    def advance(self) -> None:
        """Skip the candidate (unplaceable this pass); keep it pending."""
        self._passed.append(self._items.popleft())

    def take(self) -> tuple["ContainerRequest", "Event"]:
        """Remove and return the candidate (it is being granted)."""
        return self._items.popleft()

    def end_scan(self) -> None:
        """Splice skipped requests back in front, restoring arrival order."""
        if self._passed:
            self._items.extendleft(reversed(self._passed))
            self._passed.clear()

    # -- bookkeeping --------------------------------------------------------------

    def cancel_app(self, app_id: str) -> None:
        """Cancel every pending request of ``app_id`` (drained lazily)."""
        for request, _event in self._items:
            if request.app_id == app_id:
                request.cancel()

    def pending_count(self) -> int:
        return sum(1 for request, _ in self._items if not request.cancelled)

    def has_pending(self) -> bool:
        return bool(self._items)


class PendingPool:
    """All tenant queues of one RM, plus their configured specs."""

    def __init__(self):
        self._queues: dict[str, TenantQueue] = {}
        self._specs: dict[str, TenantSpec] = {}

    def configure(
        self,
        tenant: str,
        weight: float = 1.0,
        max_containers: Optional[int] = None,
        max_vcores: Optional[int] = None,
    ) -> TenantSpec:
        """Set (or replace) a tenant's weight and quota caps."""
        spec = TenantSpec(
            weight=weight, max_containers=max_containers, max_vcores=max_vcores
        )
        self._specs[tenant] = spec
        queue = self._queues.get(tenant)
        if queue is not None:
            queue.spec = spec
        return spec

    def spec_for(self, tenant: str) -> TenantSpec:
        return self._specs.get(tenant, TenantSpec())

    def queue_for(self, tenant: str) -> TenantQueue:
        """The tenant's queue, created on first touch with its spec."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = TenantQueue(tenant, self._specs.get(tenant))
            self._queues[tenant] = queue
        return queue

    def get(self, tenant: str) -> Optional[TenantQueue]:
        return self._queues.get(tenant)

    def active_queues(self) -> list[TenantQueue]:
        """Queues with at least one pending entry, in tenant-name order.

        Deterministic iteration matters: dict order would depend on
        tenant first-touch order, which is fine, but sorting makes the
        serve pass independent of registration history.
        """
        return sorted(
            (q for q in self._queues.values() if q.has_pending()),
            key=lambda q: q.tenant,
        )

    def pending_count(self) -> int:
        return sum(q.pending_count() for q in self._queues.values())

    def tenants(self) -> list[str]:
        return sorted(self._queues)
