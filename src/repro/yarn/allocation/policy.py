"""Cross-application allocation policies (the RM's request ordering).

A policy ranks the *candidate* requests at the head of each tenant's
scan position; the RM serves the best-ranked candidate, updates that
tenant's usage, and re-ranks only the affected queue. Ranks are plain
sortable tuples whose last element is the globally unique
``request_id``, so every ordering is total and deterministic and two
policies differ only in what they put *before* the arrival tiebreak:

``fifo``
    Nothing — pure arrival order, byte-identical to serving one global
    deque (the default, and what all single-workflow experiments use).
``fair``
    The tenant's weighted container count, approximating YARN's
    FairScheduler at container granularity: whoever holds the fewest
    containers (per unit of weight) goes first.
``drf``
    The tenant's weighted *dominant share* — the larger of its vcore and
    memory fraction of current cluster capacity (Ghodsi et al.'s
    Dominant Resource Fairness). With heterogeneous container shapes a
    memory-hungry tenant and a cpu-hungry tenant each get priority on
    the resource the other barely uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import YarnError

if TYPE_CHECKING:  # pragma: no cover
    from repro.yarn.allocation.queues import TenantQueue
    from repro.yarn.records import ContainerRequest

__all__ = [
    "ClusterShare",
    "AllocationPolicy",
    "FifoPolicy",
    "FairSharePolicy",
    "DrfPolicy",
    "POLICY_NAMES",
    "make_policy",
]


@dataclass(frozen=True)
class ClusterShare:
    """Current total capacity the DRF dominant share is measured against."""

    total_vcores: int
    total_memory_mb: float


class AllocationPolicy:
    """Protocol: rank a candidate request for service order (lower wins)."""

    #: Registry/CLI name of the policy.
    name = "abstract"

    def rank(
        self,
        request: "ContainerRequest",
        queue: "TenantQueue",
        share: ClusterShare,
    ) -> tuple:
        """Sortable key for ``request``; must end in ``request.request_id``."""
        raise NotImplementedError  # pragma: no cover - interface


class FifoPolicy(AllocationPolicy):
    """Strict arrival order across all tenants (YARN FifoScheduler)."""

    name = "fifo"

    def rank(self, request, queue, share) -> tuple:
        return (request.request_id,)


class FairSharePolicy(AllocationPolicy):
    """Fewest weighted containers held goes first (YARN FairScheduler)."""

    name = "fair"

    def rank(self, request, queue, share) -> tuple:
        return (queue.containers_held / queue.weight, request.request_id)


class DrfPolicy(AllocationPolicy):
    """Smallest weighted dominant share (vcores vs memory) goes first."""

    name = "drf"

    def rank(self, request, queue, share) -> tuple:
        vcore_share = (
            queue.vcores_held / share.total_vcores if share.total_vcores else 0.0
        )
        memory_share = (
            queue.memory_mb_held / share.total_memory_mb
            if share.total_memory_mb
            else 0.0
        )
        dominant = max(vcore_share, memory_share)
        return (dominant / queue.weight, request.request_id)


_POLICIES = {
    policy.name: policy for policy in (FifoPolicy, FairSharePolicy, DrfPolicy)
}

#: Names accepted by :func:`make_policy`, ``HiWayConfig.rm_policy`` and
#: the ``--rm-policy`` CLI flags.
POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(name: "str | AllocationPolicy") -> AllocationPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(name, AllocationPolicy):
        return name
    cls = _POLICIES.get(name)
    if cls is None:
        raise YarnError(
            f"unknown allocation policy {name!r}; choose one of {POLICY_NAMES}"
        )
    return cls()
