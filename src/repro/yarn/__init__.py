"""Simulated Hadoop YARN: ResourceManager, NodeManagers, containers."""

from repro.yarn.allocation import (
    AdmissionController,
    AdmissionTicket,
    AllocationPolicy,
    DrfPolicy,
    FairSharePolicy,
    FifoPolicy,
    POLICY_NAMES,
    TenantSpec,
    make_policy,
)
from repro.yarn.nodemanager import ContainerOutcome, NodeManager
from repro.yarn.records import (
    ApplicationHandle,
    Container,
    ContainerRequest,
    ContainerResource,
    ContainerState,
)
from repro.yarn.resourcemanager import ResourceManager

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "AllocationPolicy",
    "ApplicationHandle",
    "ContainerOutcome",
    "Container",
    "ContainerRequest",
    "ContainerResource",
    "ContainerState",
    "DrfPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "NodeManager",
    "POLICY_NAMES",
    "ResourceManager",
    "TenantSpec",
    "make_policy",
]
