"""Simulated Hadoop YARN: ResourceManager, NodeManagers, containers."""

from repro.yarn.nodemanager import ContainerOutcome, NodeManager
from repro.yarn.records import (
    ApplicationHandle,
    Container,
    ContainerRequest,
    ContainerResource,
    ContainerState,
)
from repro.yarn.resourcemanager import ResourceManager

__all__ = [
    "ApplicationHandle",
    "ContainerOutcome",
    "Container",
    "ContainerRequest",
    "ContainerResource",
    "ContainerState",
    "NodeManager",
    "ResourceManager",
]
