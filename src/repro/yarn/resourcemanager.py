"""The simulated ResourceManager: application registry and allocation.

The RM serves container requests whenever capacity exists, spreading
allocations round-robin over the workers. Across *applications* the
request ordering is a pluggable :class:`AllocationPolicy` (Sec. 3.4
notes these cluster-level modes are distinct from Hi-WAY's
workflow-level scheduler): ``fifo`` serves requests strictly in arrival
order; ``fair`` interleaves tenants, preferring whoever holds the
fewest weighted containers; ``drf`` prefers the smallest weighted
dominant share of vcores vs memory. Requests live in per-tenant queues
(:class:`~repro.yarn.allocation.PendingPool`) carrying weights and
quota caps, and an optional
:class:`~repro.yarn.allocation.AdmissionController` bounds how many
applications may be registered at once — the substrate for running the
cluster as a workflow service.

Requests may carry a node preference; ``strict`` requests wait for
exactly that node, which is how Hi-WAY enforces static (round-robin /
HEFT) schedules.

Every allocation charges a little CPU work on the master node hosting the
RM, so master-side load scales with cluster activity as in Figure 6.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.errors import AdmissionError, YarnError
from repro.obs.events import (
    AdmissionDecision,
    ApplicationRegistered,
    ApplicationUnregistered,
    ContainerAllocated,
    ContainerReleased,
    ContainerRequested,
    NodeCrashed,
)
from repro.sim.engine import Environment, Event
from repro.yarn.allocation import (
    AdmissionController,
    AdmissionTicket,
    AllocationPolicy,
    PendingPool,
    POLICY_NAMES,
    make_policy,
)
from repro.yarn.nodemanager import NodeManager
from repro.yarn.allocation.policy import ClusterShare
from repro.yarn.records import (
    ApplicationHandle,
    Container,
    ContainerRequest,
    ContainerResource,
)

__all__ = ["ResourceManager"]

#: CPU work charged on the RM host per allocation decision.
ALLOCATION_WORK = 0.004
#: CPU work charged on the RM host per application registration.
REGISTRATION_WORK = 0.02
#: Permanent CPU load (cores) the RM spends servicing one NodeManager's
#: heartbeats. Scales master load linearly with cluster size (Fig. 6).
HEARTBEAT_LOAD_PER_NM = 0.0005


class ResourceManager:
    """Cluster-wide resource arbiter."""

    #: Supported cross-application scheduling modes (legacy alias of
    #: :data:`~repro.yarn.allocation.POLICY_NAMES`).
    SCHEDULING_MODES = POLICY_NAMES

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        max_containers_per_node: Optional[int] = None,
        scheduling_mode: Optional[str] = None,
        policy: "Optional[str | AllocationPolicy]" = None,
        admission: Optional[AdmissionController] = None,
        tenants: Optional[dict] = None,
    ):
        if scheduling_mode is not None:
            if scheduling_mode not in self.SCHEDULING_MODES:
                raise YarnError(
                    f"unknown scheduling mode {scheduling_mode!r}; "
                    f"choose one of {self.SCHEDULING_MODES}"
                )
            if policy is not None:
                raise YarnError(
                    "pass either scheduling_mode (legacy alias) or policy, "
                    "not both"
                )
            policy = scheduling_mode
        self.policy = make_policy(policy if policy is not None else "fifo")
        #: Per-application id sequence. Deliberately *per instance*: a
        #: class-level counter would leak ids across concurrent clusters
        #: in one process (e.g. run_grid workers running A/B
        #: comparisons) and break deterministic ``application_NNNN``
        #: naming.
        self._app_ids = itertools.count(1)
        self._containers_held: dict[str, int] = {}
        self.env = env
        self.cluster = cluster
        self.bus = cluster.bus
        self.node_managers: dict[str, NodeManager] = {
            node.node_id: NodeManager(
                env, node, max_containers_per_node, bus=self.bus
            )
            for node in cluster.workers
        }
        for manager in self.node_managers.values():
            manager.on_capacity_freed.append(self._serve_pending)
        self._apps: dict[str, ApplicationHandle] = {}
        self._live_containers: set[str] = set()
        self._pool = PendingPool()
        if tenants:
            for tenant, spec in tenants.items():
                self._pool.configure(
                    tenant,
                    weight=getattr(spec, "weight", 1.0),
                    max_containers=getattr(spec, "max_containers", None),
                    max_vcores=getattr(spec, "max_vcores", None),
                )
        self._admission = admission
        self._admission_queue: deque[tuple[str, Optional[str], Event]] = deque()
        #: app_id -> tenant, kept while the app is registered or still
        #: holds containers (drained on the last release).
        self._tenant_of: dict[str, str] = {}
        self._rotation = 0
        self._host = cluster.masters[0] if cluster.masters else None
        #: Total allocations served (bookkeeping for reports/tests).
        self.allocations = 0
        self._heartbeat_flows = {}
        if self._host is not None:
            for node_id in self.node_managers:
                self._heartbeat_flows[node_id] = cluster.network.start_flow(
                    size=None,
                    resources=[self._host.cpu],
                    cap=HEARTBEAT_LOAD_PER_NM,
                    label=f"rm-heartbeat:{node_id}",
                )

    @property
    def scheduling_mode(self) -> str:
        """Legacy name of the active allocation policy."""
        return self.policy.name

    # -- tenants ---------------------------------------------------------------

    def configure_tenant(
        self,
        tenant: str,
        weight: float = 1.0,
        max_containers: Optional[int] = None,
        max_vcores: Optional[int] = None,
    ) -> None:
        """Set a tenant's fair-share weight and quota caps."""
        self._pool.configure(
            tenant,
            weight=weight,
            max_containers=max_containers,
            max_vcores=max_vcores,
        )

    def tenant_usage(self, tenant: str) -> tuple[int, int, float]:
        """``(containers, vcores, memory_mb)`` the tenant holds now."""
        queue = self._pool.get(tenant)
        if queue is None:
            return (0, 0, 0.0)
        return (queue.containers_held, queue.vcores_held, queue.memory_mb_held)

    # -- applications ----------------------------------------------------------

    def submit_application(
        self, name: str, tenant: Optional[str] = None
    ) -> AdmissionTicket:
        """Submit an AM for admission; never raises on a full cluster.

        The returned ticket is either admitted (``handle`` set), queued
        (``event`` fires with the handle once a slot frees) or rejected
        (``rejected``/``reason`` set), depending on the RM's
        :class:`~repro.yarn.allocation.AdmissionController`.
        """
        decision = (
            "admit"
            if self._admission is None
            else self._admission.decide(active=len(self._apps))
        )
        if self.bus.wants(AdmissionDecision):
            self.bus.emit(AdmissionDecision(
                name=name, tenant=tenant or "", outcome=decision
            ))
        if decision == "admit":
            return AdmissionTicket(
                name=name, tenant=tenant, handle=self._register(name, tenant)
            )
        if decision == "queue":
            event = self.env.event()
            self._admission_queue.append((name, tenant, event))
            return AdmissionTicket(name=name, tenant=tenant, event=event)
        return AdmissionTicket(
            name=name,
            tenant=tenant,
            rejected=True,
            reason=(
                f"cluster at its admission limit of "
                f"{self._admission.max_concurrent_apps} concurrent "
                f"application(s)"
            ),
        )

    def register_application(
        self, name: str, tenant: Optional[str] = None
    ) -> ApplicationHandle:
        """Register an AM; returns its handle with a fresh app id.

        Synchronous legacy API: raises :class:`AdmissionError` when an
        admission controller would queue or reject the submission (use
        :meth:`submit_application` to wait for a slot instead).
        """
        if self._admission is not None:
            decision = self._admission.decide(active=len(self._apps))
            if decision != "admit":
                raise AdmissionError(
                    f"application {name!r} not admissible "
                    f"(decision: {decision}); use submit_application() to "
                    f"queue for a slot"
                )
        return self._register(name, tenant)

    def _register(self, name: str, tenant: Optional[str]) -> ApplicationHandle:
        if self._admission is not None:
            self._admission.record_admission(name, tenant)
        app_id = f"application_{next(self._app_ids):04d}"
        app = ApplicationHandle(
            app_id=app_id, name=name, tenant=tenant or app_id
        )
        self._apps[app.app_id] = app
        self._tenant_of[app.app_id] = app.tenant
        # Materialise the tenant's queue so usage accounting and
        # configured quotas apply from the first request.
        self._pool.queue_for(app.tenant)
        if self._host is not None:
            self._host.compute(REGISTRATION_WORK, threads=1, label="rm-register")
        if self.bus.wants(ApplicationRegistered):
            self.bus.emit(ApplicationRegistered(
                app_id=app.app_id, name=name, tenant=app.tenant
            ))
        return app

    def unregister_application(self, app: ApplicationHandle) -> None:
        """Drop an AM registration and its outstanding requests."""
        self._apps.pop(app.app_id, None)
        queue = self._pool.get(self._tenant_of.get(app.app_id, app.tenant))
        if queue is not None:
            queue.cancel_app(app.app_id)
        # Held-container accounting: drop the app's entry as soon as it
        # holds nothing, otherwise on its final release (a long-lived
        # service RM must not accumulate one entry per finished app).
        if not self._containers_held.get(app.app_id):
            self._containers_held.pop(app.app_id, None)
            self._tenant_of.pop(app.app_id, None)
        if self.bus.wants(ApplicationUnregistered):
            self.bus.emit(ApplicationUnregistered(app_id=app.app_id))
        self._admit_queued()

    def _admit_queued(self) -> None:
        """Admit waiting submissions into freed slots.

        The order is the admission controller's ``drain`` policy: FIFO
        (the default) or tenant-fair (least-admitted tenant first, a
        round-robin over tenants that prevents retry starvation).
        """
        if self._admission is None:
            return
        while self._admission_queue and self._admission.has_slot(
            active=len(self._apps)
        ):
            index = self._admission.select_queued(
                [(name, tenant) for name, tenant, _ in self._admission_queue]
            )
            name, tenant, event = self._admission_queue[index]
            del self._admission_queue[index]
            if self.bus.wants(AdmissionDecision):
                self.bus.emit(AdmissionDecision(
                    name=name, tenant=tenant or "", outcome="admit"
                ))
            event.succeed(self._register(name, tenant))

    def admission_queue_depth(self) -> int:
        """Submissions waiting for an admission slot."""
        return len(self._admission_queue)

    def active_application_count(self) -> int:
        """Applications registered right now."""
        return len(self._apps)

    # -- allocation --------------------------------------------------------------

    def request_container(
        self,
        app: ApplicationHandle,
        resource: ContainerResource,
        preferred_node: Optional[str] = None,
        strict: bool = False,
    ) -> Event:
        """Ask for one container; the event fires with the :class:`Container`.

        ``strict`` requests are only ever satisfied on ``preferred_node``.
        """
        if app.app_id not in self._apps:
            raise YarnError(f"unknown application {app.app_id}")
        if strict and preferred_node is None:
            raise YarnError("strict requests need a preferred node")
        if preferred_node is not None and preferred_node not in self.node_managers:
            raise YarnError(f"unknown node {preferred_node!r}")
        tenant = self._tenant_of.get(app.app_id, app.tenant or app.app_id)
        request = ContainerRequest(
            app_id=app.app_id,
            resource=resource,
            preferred_node=preferred_node,
            strict=strict,
            tenant=tenant,
            submitted_at=self.env.now,
        )
        event = self.env.event()
        if self.bus.wants(ContainerRequested):
            self.bus.emit(ContainerRequested(
                app_id=app.app_id,
                request_id=request.request_id,
                vcores=resource.vcores,
                memory_mb=resource.memory_mb,
                preferred_node=preferred_node,
                strict=strict,
                tenant=tenant,
            ))
        self._pool.queue_for(tenant).append(request, event)
        self._serve_pending()
        return event

    def release_container(self, container: Container) -> None:
        """Free a container's capacity (triggers pending allocation)."""
        held = self._containers_held.get(container.app_id)
        if held is not None and container.container_id in self._live_containers:
            self._containers_held[container.app_id] = max(0, held - 1)
            self._live_containers.discard(container.container_id)
            tenant = self._tenant_of.get(container.app_id)
            if tenant is not None:
                queue = self._pool.get(tenant)
                if queue is not None:
                    queue.credit(container.resource)
            if (
                container.app_id not in self._apps
                and not self._containers_held.get(container.app_id)
            ):
                # The app unregistered while this container was still
                # out; its last release retires the accounting entries.
                self._containers_held.pop(container.app_id, None)
                self._tenant_of.pop(container.app_id, None)
            if self.bus.wants(ContainerReleased):
                self.bus.emit(ContainerReleased(
                    app_id=container.app_id,
                    container_id=container.container_id,
                    node_id=container.node_id,
                ))
        manager = self.node_managers.get(container.node_id)
        if manager is not None:
            manager.release(container)

    def _choose_node(self, request: ContainerRequest) -> Optional[NodeManager]:
        """Pick a NodeManager able to host ``request`` right now."""
        if request.preferred_node is not None:
            preferred = self.node_managers[request.preferred_node]
            if preferred.can_fit(request.resource):
                return preferred
            if request.strict:
                return None
        # Round-robin over workers for even spread.
        ids = list(self.node_managers)
        for offset in range(len(ids)):
            manager = self.node_managers[ids[(self._rotation + offset) % len(ids)]]
            if manager.can_fit(request.resource):
                self._rotation = (self._rotation + offset + 1) % len(ids)
                return manager
        return None

    def _cluster_share(self) -> ClusterShare:
        """Live totals the DRF dominant share is measured against."""
        vcores = 0
        memory = 0.0
        for nm in self.node_managers.values():
            if nm.node.alive:
                vcores += nm.node.spec.cores
                memory += nm.node.spec.memory_mb
        return ClusterShare(total_vcores=vcores, total_memory_mb=memory)

    def _serve_pending(self) -> None:
        """Scan outstanding requests against current capacity.

        One pass walks every tenant queue through a cursor; at each step
        the :class:`AllocationPolicy` ranks the candidate at each
        cursor and the best one is tried. Ordering is maintained
        incrementally — serving or skipping a candidate re-ranks only
        its own queue (an O(log tenants) heap operation) instead of
        re-sorting the whole backlog on every capacity-freed callback.
        Under ``fifo`` the heap degenerates to exact arrival order, so
        the pass is byte-identical to serving one global deque.
        """
        pool = self._pool
        queues = pool.active_queues()
        if not queues:
            return
        policy = self.policy
        share = self._cluster_share()
        rank = policy.rank
        # (rank, tenant, queue); ranks end in the globally unique
        # request_id, so ordering is total and the tenant tiebreak is
        # only a determinism backstop.
        heap: list = []
        scanned: list = []
        for queue in queues:
            entry = queue.current()
            if entry is not None:
                scanned.append(queue)
                heappush(heap, (rank(entry[0], queue, share), queue.tenant, queue))
        # Once a relaxed request of some size found no node, every later
        # relaxed request of the same size is hopeless too; skipping them
        # keeps the scan linear under heavy backlog.
        exhausted_sizes: set[tuple[int, float]] = set()
        while heap:
            _, _, queue = heappop(heap)
            entry = queue.current()
            if entry is None:
                continue
            request, event = entry
            resource = request.resource
            if queue.quota_blocks(resource):
                # Tenant at its cap: its whole queue sits out this pass
                # (head-of-line at quota, like a YARN queue at capacity).
                continue
            size = (resource.vcores, resource.memory_mb)
            if not request.strict and size in exhausted_sizes:
                queue.advance()
            else:
                manager = self._choose_node(request)
                if manager is None:
                    if not request.strict:
                        exhausted_sizes.add(size)
                    queue.advance()
                else:
                    queue.take()
                    self._grant(request, event, manager, queue)
            entry = queue.current()
            if entry is not None:
                heappush(heap, (rank(entry[0], queue, share), queue.tenant, queue))
        for queue in scanned:
            queue.end_scan()

    def _grant(
        self,
        request: ContainerRequest,
        event: Event,
        manager: NodeManager,
        queue,
    ) -> None:
        """Allocate on ``manager`` and deliver the container to the waiter."""
        container = manager.allocate(request.resource, request.app_id)
        self.allocations += 1
        self._containers_held[request.app_id] = (
            self._containers_held.get(request.app_id, 0) + 1
        )
        queue.charge(request.resource)
        self._live_containers.add(container.container_id)
        if self._host is not None:
            self._host.compute(ALLOCATION_WORK, threads=1, label="rm-alloc")
        if self.bus.wants(ContainerAllocated):
            self.bus.emit(ContainerAllocated(
                app_id=request.app_id,
                request_id=request.request_id,
                container_id=container.container_id,
                node_id=container.node_id,
                wait_seconds=self.env.now - request.submitted_at,
                tenant=request.tenant,
            ))
        event.succeed(container)

    # -- failure injection ---------------------------------------------------------

    def crash_node(self, node_id: str) -> list[Container]:
        """Kill a worker node; returns the containers that died with it."""
        manager = self.node_managers.get(node_id)
        if manager is None:
            raise YarnError(f"unknown node {node_id!r}")
        heartbeat = self._heartbeat_flows.pop(node_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        casualties = manager.crash()
        if self.bus.wants(NodeCrashed):
            self.bus.emit(NodeCrashed(
                node_id=node_id, containers_lost=len(casualties)
            ))
        return casualties

    # -- introspection ---------------------------------------------------------------

    @property
    def total_capacity_vcores(self) -> int:
        """Sum of vcores across live workers."""
        return sum(
            nm.node.spec.cores for nm in self.node_managers.values() if nm.node.alive
        )

    def pending_request_count(self) -> int:
        """Number of container requests waiting for capacity."""
        return self._pool.pending_count()
