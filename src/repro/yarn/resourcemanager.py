"""The simulated ResourceManager: application registry and allocation.

The RM serves container requests whenever capacity exists, spreading
allocations round-robin over the workers. Across *applications* it
supports two of YARN's internal scheduling modes (Sec. 3.4 notes these
are distinct from Hi-WAY's workflow-level scheduler): ``fifo`` serves
requests strictly in arrival order; ``fair`` interleaves applications,
preferring the one currently holding the fewest containers. Requests
may carry a node preference; ``strict`` requests wait for exactly that
node, which is how Hi-WAY enforces static (round-robin / HEFT)
schedules.

Every allocation charges a little CPU work on the master node hosting the
RM, so master-side load scales with cluster activity as in Figure 6.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.errors import YarnError
from repro.obs.events import (
    ApplicationRegistered,
    ApplicationUnregistered,
    ContainerAllocated,
    ContainerReleased,
    ContainerRequested,
    NodeCrashed,
)
from repro.sim.engine import Environment, Event
from repro.yarn.nodemanager import NodeManager
from repro.yarn.records import (
    ApplicationHandle,
    Container,
    ContainerRequest,
    ContainerResource,
)

__all__ = ["ResourceManager"]

#: CPU work charged on the RM host per allocation decision.
ALLOCATION_WORK = 0.004
#: CPU work charged on the RM host per application registration.
REGISTRATION_WORK = 0.02
#: Permanent CPU load (cores) the RM spends servicing one NodeManager's
#: heartbeats. Scales master load linearly with cluster size (Fig. 6).
HEARTBEAT_LOAD_PER_NM = 0.0005


class ResourceManager:
    """Cluster-wide resource arbiter."""

    _app_ids = itertools.count(1)

    #: Supported cross-application scheduling modes.
    SCHEDULING_MODES = ("fifo", "fair")

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        max_containers_per_node: Optional[int] = None,
        scheduling_mode: str = "fifo",
    ):
        if scheduling_mode not in self.SCHEDULING_MODES:
            raise YarnError(
                f"unknown scheduling mode {scheduling_mode!r}; "
                f"choose one of {self.SCHEDULING_MODES}"
            )
        self.scheduling_mode = scheduling_mode
        self._containers_held: dict[str, int] = {}
        self.env = env
        self.cluster = cluster
        self.bus = cluster.bus
        self.node_managers: dict[str, NodeManager] = {
            node.node_id: NodeManager(
                env, node, max_containers_per_node, bus=self.bus
            )
            for node in cluster.workers
        }
        for manager in self.node_managers.values():
            manager.on_capacity_freed.append(self._serve_pending)
        self._apps: dict[str, ApplicationHandle] = {}
        self._live_containers: set[str] = set()
        self._pending: deque[tuple[ContainerRequest, Event]] = deque()
        self._rotation = 0
        self._host = cluster.masters[0] if cluster.masters else None
        #: Total allocations served (bookkeeping for reports/tests).
        self.allocations = 0
        self._heartbeat_flows = {}
        if self._host is not None:
            for node_id in self.node_managers:
                self._heartbeat_flows[node_id] = cluster.network.start_flow(
                    size=None,
                    resources=[self._host.cpu],
                    cap=HEARTBEAT_LOAD_PER_NM,
                    label=f"rm-heartbeat:{node_id}",
                )

    # -- applications ----------------------------------------------------------

    def register_application(self, name: str) -> ApplicationHandle:
        """Register an AM; returns its handle with a fresh app id."""
        app = ApplicationHandle(app_id=f"application_{next(self._app_ids):04d}", name=name)
        self._apps[app.app_id] = app
        if self._host is not None:
            self._host.compute(REGISTRATION_WORK, threads=1, label="rm-register")
        if self.bus.wants(ApplicationRegistered):
            self.bus.emit(ApplicationRegistered(app_id=app.app_id, name=name))
        return app

    def unregister_application(self, app: ApplicationHandle) -> None:
        """Drop an AM registration and its outstanding requests."""
        self._apps.pop(app.app_id, None)
        for request, _event in self._pending:
            if request.app_id == app.app_id:
                request.cancel()
        if self.bus.wants(ApplicationUnregistered):
            self.bus.emit(ApplicationUnregistered(app_id=app.app_id))

    # -- allocation --------------------------------------------------------------

    def request_container(
        self,
        app: ApplicationHandle,
        resource: ContainerResource,
        preferred_node: Optional[str] = None,
        strict: bool = False,
    ) -> Event:
        """Ask for one container; the event fires with the :class:`Container`.

        ``strict`` requests are only ever satisfied on ``preferred_node``.
        """
        if app.app_id not in self._apps:
            raise YarnError(f"unknown application {app.app_id}")
        if strict and preferred_node is None:
            raise YarnError("strict requests need a preferred node")
        if preferred_node is not None and preferred_node not in self.node_managers:
            raise YarnError(f"unknown node {preferred_node!r}")
        request = ContainerRequest(
            app_id=app.app_id,
            resource=resource,
            preferred_node=preferred_node,
            strict=strict,
            submitted_at=self.env.now,
        )
        event = self.env.event()
        if self.bus.wants(ContainerRequested):
            self.bus.emit(ContainerRequested(
                app_id=app.app_id,
                request_id=request.request_id,
                vcores=resource.vcores,
                memory_mb=resource.memory_mb,
                preferred_node=preferred_node,
                strict=strict,
            ))
        self._pending.append((request, event))
        self._serve_pending()
        return event

    def release_container(self, container: Container) -> None:
        """Free a container's capacity (triggers pending allocation)."""
        held = self._containers_held.get(container.app_id)
        if held is not None and container.container_id in self._live_containers:
            self._containers_held[container.app_id] = max(0, held - 1)
            self._live_containers.discard(container.container_id)
            if self.bus.wants(ContainerReleased):
                self.bus.emit(ContainerReleased(
                    app_id=container.app_id,
                    container_id=container.container_id,
                    node_id=container.node_id,
                ))
        manager = self.node_managers.get(container.node_id)
        if manager is not None:
            manager.release(container)

    def _choose_node(self, request: ContainerRequest) -> Optional[NodeManager]:
        """Pick a NodeManager able to host ``request`` right now."""
        if request.preferred_node is not None:
            preferred = self.node_managers[request.preferred_node]
            if preferred.can_fit(request.resource):
                return preferred
            if request.strict:
                return None
        # Round-robin over workers for even spread.
        ids = list(self.node_managers)
        for offset in range(len(ids)):
            manager = self.node_managers[ids[(self._rotation + offset) % len(ids)]]
            if manager.can_fit(request.resource):
                self._rotation = (self._rotation + offset + 1) % len(ids)
                return manager
        return None

    def _serve_pending(self) -> None:
        """Scan outstanding requests against current capacity.

        ``fifo`` mode serves in arrival order; ``fair`` mode first orders
        requests so applications holding fewer containers go first
        (YARN's FairScheduler behaviour, approximated at container
        granularity), with arrival order breaking ties.
        """
        if not self._pending:
            return
        if self.scheduling_mode == "fair":
            self._pending = deque(sorted(
                self._pending,
                key=lambda item: (
                    self._containers_held.get(item[0].app_id, 0),
                    item[0].request_id,
                ),
            ))
        unserved: deque[tuple[ContainerRequest, Event]] = deque()
        # Once a relaxed request of some size found no node, every later
        # relaxed request of the same size is hopeless too; skipping them
        # keeps the scan linear under heavy backlog.
        exhausted_sizes: set[tuple[int, float]] = set()
        while self._pending:
            request, event = self._pending.popleft()
            if request.cancelled:
                continue
            size = (request.resource.vcores, request.resource.memory_mb)
            if not request.strict and size in exhausted_sizes:
                unserved.append((request, event))
                continue
            manager = self._choose_node(request)
            if manager is None:
                if not request.strict:
                    exhausted_sizes.add(size)
                unserved.append((request, event))
                continue
            container = manager.allocate(request.resource, request.app_id)
            self.allocations += 1
            self._containers_held[request.app_id] = (
                self._containers_held.get(request.app_id, 0) + 1
            )
            self._live_containers.add(container.container_id)
            if self._host is not None:
                self._host.compute(ALLOCATION_WORK, threads=1, label="rm-alloc")
            if self.bus.wants(ContainerAllocated):
                self.bus.emit(ContainerAllocated(
                    app_id=request.app_id,
                    request_id=request.request_id,
                    container_id=container.container_id,
                    node_id=container.node_id,
                    wait_seconds=self.env.now - request.submitted_at,
                ))
            event.succeed(container)
        self._pending = unserved

    # -- failure injection ---------------------------------------------------------

    def crash_node(self, node_id: str) -> list[Container]:
        """Kill a worker node; returns the containers that died with it."""
        manager = self.node_managers.get(node_id)
        if manager is None:
            raise YarnError(f"unknown node {node_id!r}")
        heartbeat = self._heartbeat_flows.pop(node_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        casualties = manager.crash()
        if self.bus.wants(NodeCrashed):
            self.bus.emit(NodeCrashed(
                node_id=node_id, containers_lost=len(casualties)
            ))
        return casualties

    # -- introspection ---------------------------------------------------------------

    @property
    def total_capacity_vcores(self) -> int:
        """Sum of vcores across live workers."""
        return sum(
            nm.node.spec.cores for nm in self.node_managers.values() if nm.node.alive
        )

    def pending_request_count(self) -> int:
        """Number of container requests waiting for capacity."""
        return sum(1 for request, _ in self._pending if not request.cancelled)
