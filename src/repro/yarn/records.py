"""Protocol records shared between the YARN components."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "ContainerResource",
    "ContainerState",
    "Container",
    "ContainerRequest",
    "ApplicationHandle",
]


@dataclass(frozen=True)
class ContainerResource:
    """Capability of a container: virtual cores and memory.

    Matches YARN's ``Resource`` record; Hi-WAY configures one fixed
    capability for all its worker containers (Sec. 3.1).
    """

    vcores: int = 1
    memory_mb: float = 1024.0

    def __post_init__(self) -> None:
        if self.vcores < 1:
            raise ValueError("a container needs at least one vcore")
        if self.memory_mb <= 0:
            raise ValueError("a container needs positive memory")


class ContainerState(Enum):
    """Lifecycle of a container."""

    ALLOCATED = "allocated"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    RELEASED = "released"


@dataclass
class Container:
    """A granted slice of one NodeManager."""

    container_id: str
    node_id: str
    resource: ContainerResource
    app_id: str
    state: ContainerState = ContainerState.ALLOCATED

    @property
    def is_active(self) -> bool:
        return self.state in (ContainerState.ALLOCATED, ContainerState.RUNNING)


_request_ids = itertools.count()


@dataclass
class ContainerRequest:
    """An AM's ask for one container.

    ``preferred_node`` expresses locality: with ``strict=True`` the RM
    waits for capacity on exactly that node (static schedulers pre-place
    tasks); otherwise the preference is best-effort and any node may be
    returned (Hi-WAY's default queue schedulers bind tasks late).
    """

    app_id: str
    resource: ContainerResource
    preferred_node: Optional[str] = None
    strict: bool = False
    #: Tenant (YARN queue) the owning application submits under; the RM
    #: stamps it from the :class:`ApplicationHandle` so allocation
    #: policies and quotas can group requests without an app lookup.
    tenant: str = ""
    request_id: int = field(default_factory=lambda: next(_request_ids))
    cancelled: bool = False
    #: Simulation time the RM accepted the request (allocation latency
    #: on :class:`~repro.obs.events.ContainerAllocated` derives from it).
    submitted_at: float = 0.0

    def cancel(self) -> None:
        """Withdraw the ask; pending requests are skipped by the RM."""
        self.cancelled = True


@dataclass
class ApplicationHandle:
    """RM-side registration of one application master.

    ``tenant`` is the YARN-queue identity the application submits
    under: allocation policies rank, and quota caps bound, usage at
    tenant granularity. Defaults to the app id, so an unconfigured
    installation degenerates to one tenant per application.
    """

    app_id: str
    name: str
    tenant: str = ""
