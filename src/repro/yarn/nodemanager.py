"""The simulated NodeManager: per-node container bookkeeping."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.cluster.node import Node
from repro.errors import ContainerError, YarnError
from repro.obs.bus import EventBus
from repro.obs.events import ContainerFinished, ContainerLaunched
from repro.sim.engine import Environment, Process
from repro.yarn.records import Container, ContainerResource, ContainerState

__all__ = ["NodeManager", "ContainerOutcome"]


@dataclass(frozen=True)
class ContainerOutcome:
    """Terminal report of one container execution.

    Container bodies never propagate exceptions into the event loop: the
    watcher process always *returns* one of these, mirroring how a real AM
    learns about container exits through status reports rather than
    exceptions.
    """

    container: Container
    success: bool
    value: object = None
    error: Optional[BaseException] = None

    @property
    def diagnostics(self) -> str:
        """Human-readable failure reason (empty on success)."""
        return "" if self.success else repr(self.error)


class NodeManager:
    """Tracks and launches containers on one worker node.

    Capacity is the node's full core and memory complement unless
    ``max_containers`` further restricts concurrency (the knob both
    Sec. 4.1's and Sec. 4.2's experiments turn to one container per node
    for memory-hungry tasks).
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        node: Node,
        max_containers: Optional[int] = None,
        bus: Optional[EventBus] = None,
    ):
        self.env = env
        self.node = node
        #: Observability bus (a private idle one when constructed bare).
        self.bus = bus if bus is not None else EventBus(env)
        self.max_containers = max_containers
        self.available_vcores = node.spec.cores
        self.available_memory_mb = node.spec.memory_mb
        self.containers: dict[str, Container] = {}
        self._running: dict[str, Process] = {}
        self._active_count = 0
        #: Observers notified when capacity frees up (the RM hooks this).
        self.on_capacity_freed: list[Callable[[], None]] = []

    @property
    def node_id(self) -> str:
        return self.node.node_id

    @property
    def active_container_count(self) -> int:
        return self._active_count

    def can_fit(self, resource: ContainerResource) -> bool:
        """Whether a container of ``resource`` fits right now."""
        if not self.node.alive:
            return False
        if (
            self.max_containers is not None
            and self.active_container_count >= self.max_containers
        ):
            return False
        return (
            resource.vcores <= self.available_vcores
            and resource.memory_mb <= self.available_memory_mb
        )

    def allocate(self, resource: ContainerResource, app_id: str) -> Container:
        """Reserve capacity and hand back a container record."""
        if not self.can_fit(resource):
            raise YarnError(f"{self.node_id}: no capacity for {resource}")
        self.available_vcores -= resource.vcores
        self.available_memory_mb -= resource.memory_mb
        container = Container(
            container_id=f"container-{next(NodeManager._ids):06d}",
            node_id=self.node_id,
            resource=resource,
            app_id=app_id,
        )
        self.containers[container.container_id] = container
        self._active_count += 1
        return container

    def launch(self, container: Container, body: Generator) -> Process:
        """Run ``body`` (a simulation generator) inside ``container``.

        The returned watcher process fires when the body finishes and
        always *returns* a :class:`ContainerOutcome`; failures inside the
        body never escape into the event loop.
        """
        if container.container_id not in self.containers:
            raise ContainerError(f"unknown container {container.container_id}")
        if container.state not in (
            ContainerState.ALLOCATED,
            ContainerState.COMPLETED,  # container reuse (e.g. Tez)
        ):
            raise ContainerError(
                f"container {container.container_id} in state {container.state}"
            )
        container.state = ContainerState.RUNNING
        if self.bus.wants(ContainerLaunched):
            self.bus.emit(ContainerLaunched(
                app_id=container.app_id,
                container_id=container.container_id,
                node_id=self.node_id,
            ))
        inner = self.env.process(body)
        # Interrupts (release / crash) target the body itself.
        self._running[container.container_id] = inner
        return self.env.process(self._watch(container, inner))

    def _watch(self, container: Container, inner: Process):
        try:
            value = yield inner
        except BaseException as error:
            if container.state is ContainerState.RUNNING:
                container.state = ContainerState.FAILED
            self._running.pop(container.container_id, None)
            self._report(container, success=False)
            return ContainerOutcome(container, success=False, error=error)
        self._running.pop(container.container_id, None)
        if container.state is ContainerState.RUNNING:
            container.state = ContainerState.COMPLETED
            self._report(container, success=True)
            return ContainerOutcome(container, success=True, value=value)
        # Released or crashed while the body was winding down.
        self._report(container, success=False)
        return ContainerOutcome(
            container,
            success=False,
            value=value,
            error=ContainerError(f"container ended in state {container.state}"),
        )

    def _report(self, container: Container, success: bool) -> None:
        if self.bus.wants(ContainerFinished):
            self.bus.emit(ContainerFinished(
                app_id=container.app_id,
                container_id=container.container_id,
                node_id=self.node_id,
                success=success,
                state=container.state.value,
            ))

    def release(self, container: Container) -> None:
        """Return the container's capacity to the node."""
        stored = self.containers.pop(container.container_id, None)
        if stored is None:
            return  # Releasing twice is a no-op, as in YARN.
        self._active_count -= 1
        if stored.state is ContainerState.RUNNING:
            process = self._running.pop(container.container_id, None)
            if process is not None and process.is_alive:
                process.interrupt("container released")
        stored.state = ContainerState.RELEASED
        self.available_vcores += stored.resource.vcores
        self.available_memory_mb += stored.resource.memory_mb
        for callback in list(self.on_capacity_freed):
            callback()

    def crash(self) -> list[Container]:
        """Simulate a node failure: kill everything, mark the node dead.

        Returns the containers that were active so the RM can notify AMs.
        """
        self.node.alive = False
        casualties = [c for c in self.containers.values() if c.is_active]
        for container in casualties:
            process = self._running.pop(container.container_id, None)
            if process is not None and process.is_alive:
                process.interrupt("node crashed")
            container.state = ContainerState.FAILED
        self.containers.clear()
        self._active_count = 0
        self.available_vcores = 0
        self.available_memory_mb = 0.0
        return casualties
