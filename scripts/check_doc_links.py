#!/usr/bin/env python3
"""Fail CI on broken intra-repo links in the project's Markdown files.

Scans every tracked ``*.md`` file for inline Markdown links and checks
the relative ones against the working tree:

* ``[text](relative/path)`` — the target file or directory must exist,
  resolved against the linking file's directory (or the repo root when
  the link starts with ``/``);
* ``[text](relative/path#anchor)`` and ``[text](#anchor)`` — the target
  must additionally contain a heading whose GitHub slug matches the
  anchor.

External links (``http(s)://``, ``mailto:``) are out of scope — CI must
not depend on the network. Usage::

    python scripts/check_doc_links.py [root]

Exits 0 when every intra-repo link resolves, 1 otherwise (listing every
broken link as ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links: [text](target). Images share the syntax via a leading
#: "!", which the pattern tolerates. Reference-style links are rare in
#: this repo and skipped.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories never scanned (generated or vendored content).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (lowercase, dashes, no punct)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every inline link."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield number, match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    for number, target in iter_links(path):
        if target.startswith(EXTERNAL):
            continue
        base, _, anchor = target.partition("#")
        if base:
            resolved = (
                root / base.lstrip("/") if base.startswith("/")
                else path.parent / base
            )
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}:{number}: {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md" and resolved.is_file():
            if github_slug(anchor) not in heading_slugs(resolved):
                errors.append(
                    f"{path.relative_to(root)}:{number}: {target} "
                    f"(missing heading)"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files = sorted(
        path for path in root.rglob("*.md")
        if not SKIP_DIRS.intersection(part for part in path.parts)
    )
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print(f"{len(errors)} broken intra-repo link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"ok: {len(files)} Markdown files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
