#!/usr/bin/env python3
"""Epsilon-diff for recorded experiment tables.

Compares two results trees (or two single files) cell by cell and
reports the maximum relative drift per table. This is the measurement
tool of the two-version flow-solver contract: ``global-v1`` and
``partitioned-v2`` agree on every flow *rate* to within
``PARITY_EPSILON``, but a one-ULP shift in a task completion time can
flip a HEFT tie-break, so table-level drift is *measured*, never
assumed. The numbers this script prints are what EXPERIMENTS.md records
as the re-baselining evidence, and CI's solver-parity job gates on the
``--epsilon`` threshold.

Non-numeric content (headers, notes, rules) is ignored, as are
``solver_version:`` stamps and ``(wall time Ns)`` footers — those are
*expected* to differ between runs.

Usage:
    python scripts/diff_tables.py results/ /tmp/results-v1/
    python scripts/diff_tables.py a/table2.txt b/table2.txt --epsilon 0.02
"""

from __future__ import annotations

import argparse
import math
import os
import re
import sys

#: Lines that never carry comparable data.
_SKIP = re.compile(
    r"^\s*(note:|solver_version:|_solver_version:"
    r"|\(wall time\b|\(regenerated in\b|==|--+\s*$)"
)

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")


def table_numbers(path: str) -> list[list[float]]:
    """Numeric cells per data line, format-agnostic (.txt or .md)."""
    rows: list[list[float]] = []
    with open(path) as fh:
        for line in fh:
            if _SKIP.match(line):
                continue
            cells = [float(tok) for tok in _NUMBER.findall(line.replace("|", " "))]
            if cells:
                rows.append(cells)
    return rows


def relative_drift(a: float, b: float) -> float:
    """|a-b| scaled by the larger magnitude; 0 when both are zero."""
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def diff_tables(path_a: str, path_b: str) -> float:
    """Max relative drift between two recorded tables.

    Returns ``inf`` on a structural mismatch (different row/cell
    counts) — a shape change is not a drift, it's a different table.
    """
    rows_a = table_numbers(path_a)
    rows_b = table_numbers(path_b)
    if len(rows_a) != len(rows_b):
        return math.inf
    worst = 0.0
    for row_a, row_b in zip(rows_a, rows_b):
        if len(row_a) != len(row_b):
            return math.inf
        for cell_a, cell_b in zip(row_a, row_b):
            worst = max(worst, relative_drift(cell_a, cell_b))
    return worst


def paired_files(a: str, b: str) -> list[tuple[str, str, str]]:
    """(label, path_a, path_b) pairs; single files pair directly."""
    if os.path.isfile(a):
        return [(os.path.basename(a), a, b)]
    names = sorted(
        name
        for name in os.listdir(a)
        if name.endswith((".txt", ".md"))
        and os.path.isfile(os.path.join(b, name))
    )
    return [(name, os.path.join(a, name), os.path.join(b, name)) for name in names]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("a", help="baseline results tree or file")
    parser.add_argument("b", help="candidate results tree or file")
    parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="gate: exit 1 if any table drifts beyond this relative bound",
    )
    args = parser.parse_args()

    pairs = paired_files(args.a, args.b)
    if not pairs:
        print(f"no comparable tables between {args.a} and {args.b}", file=sys.stderr)
        return 2
    failed = []
    print(f"{'table':<24} {'max_rel_drift':>14}")
    for label, path_a, path_b in pairs:
        drift = diff_tables(path_a, path_b)
        shown = "SHAPE MISMATCH" if math.isinf(drift) else f"{drift:.3e}"
        print(f"{label:<24} {shown:>14}")
        if args.epsilon is not None and not drift <= args.epsilon:
            failed.append(label)
    if failed:
        print(
            f"drift beyond epsilon={args.epsilon:g} in: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
