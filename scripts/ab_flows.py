#!/usr/bin/env python3
"""Interleaved A/B harness for the flow-solver hot benchmarks.

Checks the base revision out into a temporary git worktree, then runs
the benchmarks in alternating A/B/A/B passes so slow machine drift
(thermal throttling, noisy neighbours) cancels out instead of biasing
one side. Reports the median post/pre throughput ratio per benchmark.

Usage:
    python scripts/ab_flows.py                # working tree vs HEAD
    python scripts/ab_flows.py --base HEAD~1  # e.g. after committing
    python scripts/ab_flows.py --rounds 7 --quick
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

BENCHES = ["flow_rebalance", "end_to_end_fig9", "end_to_end_snv"]

_SNIPPET = """\
import json, sys
sys.path.insert(0, {src!r})
from repro.perf.bench import BENCHMARKS
out = {{}}
for name in {benches!r}:
    fn = BENCHMARKS.get(name)
    if fn is None:
        continue  # benchmark absent at this revision
    ops, wall = fn({quick!r})
    out[name] = ops / wall
print(json.dumps(out))
"""


def measure(src: str, quick: bool) -> dict[str, float]:
    code = _SNIPPET.format(src=src, benches=BENCHES, quick=quick)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="HEAD", help="git rev to compare against")
    parser.add_argument("--rounds", type=int, default=5, help="A/B pass pairs")
    parser.add_argument("--quick", action="store_true", help="quick bench sizes")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    head_src = os.path.join(repo, "src")
    base_dir = tempfile.mkdtemp(prefix="ab-flows-")
    subprocess.run(
        ["git", "worktree", "add", "--detach", base_dir, args.base],
        cwd=repo,
        check=True,
        capture_output=True,
    )
    try:
        base_src = os.path.join(base_dir, "src")
        pre: dict[str, list[float]] = {name: [] for name in BENCHES}
        post: dict[str, list[float]] = {name: [] for name in BENCHES}
        for round_index in range(args.rounds):
            a = measure(base_src, args.quick)
            b = measure(head_src, args.quick)
            for name in BENCHES:
                if name in a:
                    pre[name].append(a[name])
                if name in b:
                    post[name].append(b[name])
            print(f"round {round_index + 1}/{args.rounds} done", file=sys.stderr)
        print(f"{'benchmark':<20} {'pre ops/s':>12} {'post ops/s':>12} {'ratio':>7}")
        for name in BENCHES:
            if not pre[name] or not post[name]:
                print(f"{name:<20} {'absent at base':>12}")
                continue
            ratios = sorted(
                q / p for p, q in zip(sorted(pre[name]), sorted(post[name]))
            )
            print(
                f"{name:<20} {statistics.median(pre[name]):>12,.0f} "
                f"{statistics.median(post[name]):>12,.0f} "
                f"{statistics.median(ratios):>6.2f}x"
            )
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", base_dir],
            cwd=repo,
            check=False,
            capture_output=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
