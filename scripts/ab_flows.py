#!/usr/bin/env python3
"""Interleaved A/B harness for the flow-solver hot benchmarks.

Two comparison axes:

* **Revision axis** (default): checks the base revision out into a
  temporary git worktree, then runs the benchmarks in alternating
  A/B/A/B passes so slow machine drift (thermal throttling, noisy
  neighbours) cancels out instead of biasing one side.
* **Solver axis** (``--solver A B``): both sides run from the *same*
  source tree, but with different flow-solver versions injected via
  ``repro.perf.bench.BENCH_SOLVER`` — no worktree checkout needed.
  This is how the global-v1 vs partitioned-v2 speedup is measured.

Reports the median post/pre throughput ratio per benchmark.

Usage:
    python scripts/ab_flows.py                # working tree vs HEAD
    python scripts/ab_flows.py --base HEAD~1  # e.g. after committing
    python scripts/ab_flows.py --solver global-v1 partitioned-v2
    python scripts/ab_flows.py --rounds 7 --quick
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

BENCHES = ["flow_rebalance", "end_to_end_fig9", "end_to_end_snv"]

_SNIPPET = """\
import json, sys
sys.path.insert(0, {src!r})
from repro.perf import bench
solver = {solver!r}
if solver is not None:
    bench.BENCH_SOLVER = solver
out = {{}}
for name in {benches!r}:
    fn = bench.BENCHMARKS.get(name)
    if fn is None:
        continue  # benchmark absent at this revision
    ops, wall = fn({quick!r})
    out[name] = ops / wall
print(json.dumps(out))
"""


def measure(src: str, quick: bool, solver: str | None = None) -> dict[str, float]:
    code = _SNIPPET.format(src=src, benches=BENCHES, quick=quick, solver=solver)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="HEAD", help="git rev to compare against")
    parser.add_argument(
        "--solver",
        nargs=2,
        metavar=("PRE", "POST"),
        default=None,
        help=(
            "compare two flow-solver versions from the current tree "
            "(e.g. --solver global-v1 partitioned-v2) instead of two "
            "git revisions; --base is ignored"
        ),
    )
    parser.add_argument("--rounds", type=int, default=5, help="A/B pass pairs")
    parser.add_argument("--quick", action="store_true", help="quick bench sizes")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    head_src = os.path.join(repo, "src")
    if args.solver is not None:
        pre_solver, post_solver = args.solver
        base_dir = None
        base_src = head_src
        pre_label, post_label = pre_solver, post_solver
    else:
        pre_solver = post_solver = None
        base_dir = tempfile.mkdtemp(prefix="ab-flows-")
        subprocess.run(
            ["git", "worktree", "add", "--detach", base_dir, args.base],
            cwd=repo,
            check=True,
            capture_output=True,
        )
        base_src = os.path.join(base_dir, "src")
        pre_label, post_label = args.base, "worktree"
    try:
        pre: dict[str, list[float]] = {name: [] for name in BENCHES}
        post: dict[str, list[float]] = {name: [] for name in BENCHES}
        for round_index in range(args.rounds):
            a = measure(base_src, args.quick, pre_solver)
            b = measure(head_src, args.quick, post_solver)
            for name in BENCHES:
                if name in a:
                    pre[name].append(a[name])
                if name in b:
                    post[name].append(b[name])
            print(f"round {round_index + 1}/{args.rounds} done", file=sys.stderr)
        print(f"pre = {pre_label}, post = {post_label}", file=sys.stderr)
        print(f"{'benchmark':<20} {'pre ops/s':>12} {'post ops/s':>12} {'ratio':>7}")
        for name in BENCHES:
            if not pre[name] or not post[name]:
                print(f"{name:<20} {'absent at base':>12}")
                continue
            ratios = sorted(
                q / p for p, q in zip(sorted(pre[name]), sorted(post[name]))
            )
            print(
                f"{name:<20} {statistics.median(pre[name]):>12,.0f} "
                f"{statistics.median(post[name]):>12,.0f} "
                f"{statistics.median(ratios):>6.2f}x"
            )
    finally:
        if base_dir is not None:
            subprocess.run(
                ["git", "worktree", "remove", "--force", base_dir],
                cwd=repo,
                check=False,
                capture_output=True,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
